(* Tests of the windowed, load-spread state-transfer pipeline: the window
   bound, source quarantine, chunked-object reassembly, leaf-cache hits
   and Byzantine chunk sources (no simulator — a synchronous in-process
   channel with per-source tampering). *)

module St = Base_core.State_transfer
module Objrepo = Base_core.Objrepo
module Service = Base_core.Service
module Digest = Base_crypto.Digest_t
module Prng = Base_util.Prng

let synthetic ?(n_objects = 64) ?(obj_bytes = 64) ?cache_objs ~seed () =
  let prng = Prng.create seed in
  let store = Array.init n_objects (fun _ -> Bytes.to_string (Prng.bytes prng obj_bytes)) in
  let wrapper =
    {
      Service.name = "synthetic";
      n_objects;
      execute = (fun ~client:_ ~operation:_ ~nondet:_ ~read_only:_ ~modify:_ -> "");
      get_obj = (fun i -> store.(i));
      put_objs = (fun objs -> List.iter (fun (i, v) -> store.(i) <- v) objs);
      restart = (fun () -> ());
      propose_nondet = (fun ~clock_us:_ ~operation:_ -> "");
      check_nondet = (fun ~clock_us:_ ~operation:_ ~nondet:_ -> true);
      oids_of_op = Service.no_footprint;
    }
  in
  (store, Objrepo.create ?cache_objs ~wrapper ~branching:8 ())

let mutate ~obj_bytes store repo prng i =
  Objrepo.modify repo i;
  store.(i) <- Bytes.to_string (Prng.bytes prng obj_bytes)

let checkpoint repo ~seq =
  let root = Objrepo.take_checkpoint repo ~seq ~client_rows:[] in
  (root, St.combined_digest ~app_root:root ~client_rows:[])

type run = {
  completed : bool;
  stats : St.stats;
  scoreboard : St.source array;
  peak_inflight : int;
  sent : (int * St.msg) list;  (** every (dst, request) in send order *)
}

(* Drive a fetch against [sources] replicas all serving the same [src]
   repo over a synchronous queue.  [tamper ~src reply] lets a test make
   individual sources Byzantine; [on_step] observes the fetcher after
   every handled reply.  [retry] is never called, so a quarantine imposed
   during the run never expires. *)
let drive ?(params = St.default_params) ?(tamper = fun ~src:_ m -> m)
    ?(on_step = fun _ -> ()) ?(sources = [ 0 ]) ~src ~dst ~seq ~digest () =
  let q = Queue.create () in
  let sent = ref [] in
  let completed = ref false in
  let peak = ref 0 in
  let fetcher =
    St.start ~params ~repo:dst ~sources ~target_seq:seq ~target_digest:digest
      ~send:(fun ~dst:d m ->
        sent := (d, m) :: !sent;
        Queue.add (d, m) q)
      ~on_complete:(fun ~seq:_ ~app_root:_ ~client_rows:_ -> completed := true)
      ()
  in
  let rounds = ref 0 in
  while (not (Queue.is_empty q)) && !rounds < 100_000 do
    incr rounds;
    let d, m = Queue.pop q in
    (match St.serve src m with
    | Some reply -> St.handle_reply fetcher ~from:d (tamper ~src:d reply)
    | None -> ());
    if St.inflight fetcher > !peak then peak := St.inflight fetcher;
    on_step fetcher
  done;
  {
    completed = !completed;
    stats = St.stats fetcher;
    scoreboard = St.scoreboard fetcher;
    peak_inflight = !peak;
    sent = List.rev !sent;
  }

let corrupt data = String.map (fun c -> Char.chr (Char.code c lxor 1)) data

let test_window_never_exceeded () =
  let obj_bytes = 64 in
  let store_src, src = synthetic ~obj_bytes ~seed:1L () in
  let _, dst = synthetic ~obj_bytes ~seed:1L () in
  let prng = Prng.create 2L in
  for i = 0 to 29 do
    mutate ~obj_bytes store_src src prng (i * 2)
  done;
  let params = { St.default_params with St.window = 4 } in
  let root, digest = checkpoint src ~seq:1 in
  let r = drive ~params ~sources:[ 0; 1; 2 ] ~src ~dst ~seq:1 ~digest () in
  Alcotest.(check bool) "completed" true r.completed;
  Alcotest.(check int) "window reached but never exceeded" 4 r.peak_inflight;
  Alcotest.(check int) "all 30 dirty objects fetched" 30 r.stats.St.objects_fetched;
  Alcotest.(check bool) "root converged" true (Digest.equal (Objrepo.current_root dst) root);
  (* The burst stripes over every source, not just the lowest id. *)
  Array.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "source %d shared the load" s.St.src_id)
        true (s.St.sent > 0))
    r.scoreboard

let test_quarantined_source_gets_nothing () =
  let obj_bytes = 64 in
  let store_src, src = synthetic ~obj_bytes ~seed:3L () in
  let _, dst = synthetic ~obj_bytes ~seed:3L () in
  let prng = Prng.create 4L in
  for i = 0 to 19 do
    mutate ~obj_bytes store_src src prng i
  done;
  let root, digest = checkpoint src ~seq:1 in
  (* Source 1 corrupts every object body it serves; source 0 is honest. *)
  let tamper ~src:d m =
    match m with
    | St.Obj_reply { seq; index; off; total; data } when d = 1 ->
      St.Obj_reply { seq; index; off; total; data = corrupt data }
    | m -> m
  in
  let sent_at_quarantine = ref (-1) in
  let on_step fetcher =
    let s1 = (St.scoreboard fetcher).(1) in
    if s1.St.quarantine > 0 && !sent_at_quarantine < 0 then
      sent_at_quarantine := s1.St.sent
  in
  let r = drive ~tamper ~on_step ~sources:[ 0; 1 ] ~src ~dst ~seq:1 ~digest () in
  Alcotest.(check bool) "completed despite the liar" true r.completed;
  Alcotest.(check bool) "source 1 was quarantined" true (!sent_at_quarantine >= 0);
  (* retry is never called, so the quarantine never expires: once imposed,
     source 1 must not be sent another request. *)
  Alcotest.(check int) "no fetches after quarantine" !sent_at_quarantine
    r.scoreboard.(1).St.sent;
  Alcotest.(check bool) "root converged" true (Digest.equal (Objrepo.current_root dst) root)

let test_chunked_objects_reassemble () =
  (* 10 KB objects against a 4 KB chunk limit: three ranged replies each,
     verified only as an assembled whole. *)
  let obj_bytes = 10_000 in
  let store_src, src = synthetic ~n_objects:16 ~obj_bytes ~seed:5L () in
  let _, dst = synthetic ~n_objects:16 ~obj_bytes ~seed:5L () in
  let prng = Prng.create 6L in
  List.iter (fun i -> mutate ~obj_bytes store_src src prng i) [ 1; 6; 9; 14 ];
  let root, digest = checkpoint src ~seq:1 in
  let r = drive ~sources:[ 0; 1; 2 ] ~src ~dst ~seq:1 ~digest () in
  Alcotest.(check bool) "completed" true r.completed;
  Alcotest.(check int) "all four objects fetched" 4 r.stats.St.objects_fetched;
  Alcotest.(check int) "three chunks per object" 12 r.stats.St.chunks_fetched;
  Alcotest.(check int) "whole bodies accounted" 40_000 r.stats.St.bytes_fetched;
  Alcotest.(check bool) "root converged" true (Digest.equal (Objrepo.current_root dst) root)

let test_cache_hit_skips_fetch () =
  let obj_bytes = 64 in
  let store_src, src = synthetic ~obj_bytes ~seed:7L () in
  let _, dst = synthetic ~obj_bytes ~seed:7L () in
  let prng = Prng.create 8L in
  mutate ~obj_bytes store_src src prng 5;
  let root, digest = checkpoint src ~seq:1 in
  (* dst has already seen the certified value (say, via copy-on-write
     before a rollback): prime its leaf cache under the leaf digest. *)
  Objrepo.cache_put dst (Service.object_digest 5 store_src.(5)) store_src.(5);
  let r = drive ~sources:[ 0; 1 ] ~src ~dst ~seq:1 ~digest () in
  Alcotest.(check bool) "completed" true r.completed;
  Alcotest.(check int) "satisfied from the cache" 1 r.stats.St.cache_hits;
  Alcotest.(check int) "no object fetched over the network" 0 r.stats.St.objects_fetched;
  Alcotest.(check bool) "no Fetch_obj ever sent" true
    (List.for_all (fun (_, m) -> match m with St.Fetch_obj _ -> false | _ -> true) r.sent);
  Alcotest.(check bool) "root converged" true (Digest.equal (Objrepo.current_root dst) root)

let test_byzantine_chunks_cannot_stall () =
  (* Source 1 serves correctly-shaped but corrupt chunk bodies.  The lie
     is only detectable on whole-object assembly; the rejected assembly
     strikes every contributor, re-stripes from chunk zero, and the liar's
     accumulating strikes quarantine it — recovery completes from the
     honest source. *)
  let obj_bytes = 10_000 in
  let store_src, src = synthetic ~n_objects:16 ~obj_bytes ~seed:9L () in
  let _, dst = synthetic ~n_objects:16 ~obj_bytes ~seed:9L () in
  let prng = Prng.create 10L in
  List.iter (fun i -> mutate ~obj_bytes store_src src prng i) [ 0; 3; 5; 8; 11; 13 ];
  let root, digest = checkpoint src ~seq:1 in
  let tamper ~src:d m =
    match m with
    | St.Obj_reply { seq; index; off; total; data } when d = 1 ->
      St.Obj_reply { seq; index; off; total; data = corrupt data }
    | m -> m
  in
  let r = drive ~tamper ~sources:[ 0; 1 ] ~src ~dst ~seq:1 ~digest () in
  Alcotest.(check bool) "completed despite Byzantine chunks" true r.completed;
  Alcotest.(check bool) "rejected assemblies were observed" true
    (r.stats.St.objects_rejected > 0);
  Alcotest.(check bool) "the liar was quarantined" true (r.scoreboard.(1).St.quarantines > 0);
  Alcotest.(check bool) "root converged" true (Digest.equal (Objrepo.current_root dst) root)

let suite =
  [
    Alcotest.test_case "window reached, never exceeded" `Quick test_window_never_exceeded;
    Alcotest.test_case "quarantined source receives no fetches" `Quick
      test_quarantined_source_gets_nothing;
    Alcotest.test_case "chunked objects reassemble and verify" `Quick
      test_chunked_objects_reassemble;
    Alcotest.test_case "cache hit skips the network fetch" `Quick test_cache_hit_skips_fetch;
    Alcotest.test_case "byzantine chunk source cannot stall recovery" `Quick
      test_byzantine_chunks_cannot_stall;
  ]
