let () =
  Alcotest.run "base_repro"
    [
      ("substrate", Test_substrate.suite);
      ("stats", Test_stats.suite);
      ("obs", Test_obs.suite);
      ("state-transfer", Test_state_transfer.suite);
      ("state-transfer-pipeline", Test_st_pipeline.suite);
      ("partition-tree", Test_partition_tree_prop.suite);
      ("nfs-model", Test_nfs_model.suite);
      ("oodb", Test_oodb.suite);
      ("bft", Test_bft.suite);
      ("client", Test_client.suite);
      ("bft-wire", Test_bft_wire.suite);
      ("digest-memo", Test_digest_memo.suite);
      ("mac-equiv", Test_mac_equiv.suite);
      ("event-heap", Test_event_heap.suite);
      ("byzantine-input", Test_byzantine_input.suite @ Test_fuzz_decode.suite);
      ("determinism", Test_determinism.suite);
      ("faultplan", Test_faultplan.suite);
      ("view-change", Test_view_change.suite);
      ("lint", Test_lint.suite);
      ("batching", Test_batching.suite);
      ("load", Test_load.suite);
      ("stack", Test_stack.suite);
      ("conformance", Test_conformance.suite);
      ("cross-backend-digest", Test_cross_backend_digest.suite);
      ("wrapper-edge", Test_wrapper_edge.suite);
      ("recovery", Test_recovery.suite);
      ("standby", Test_standby.suite);
      ("workload", Test_workload.suite);
      ("sharding", Test_sharding.suite);
      ("cross-shard", Test_xshard.suite);
      ("safety-sweep", Test_safety_sweep.suite);
      ("stress-combo", Test_stress_combo.suite);
      ("basefs", Test_basefs.suite);
    ]
