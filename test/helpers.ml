(* Shared test scaffolding: a tiny deterministic key-value service wrapped
   for BASE, used to exercise the replication stack without the NFS layer. *)

module Service = Base_core.Service

(* A register array service: operations "set:<i>:<value>" and "get:<i>".
   Keeps a timestamp per slot fed from the agreed nondet value, exactly like
   the NFS wrapper does for time-last-modified. *)
type kv = { slots : string array; stamps : int64 array; mutable restarts : int }

let kv_wrapper ?(n_objects = 8) () =
  let kv =
    { slots = Array.make n_objects ""; stamps = Array.make n_objects 0L; restarts = 0 }
  in
  let parse op = String.split_on_char ':' op in
  let execute ~client:_ ~operation ~nondet ~read_only:_ ~modify =
    match parse operation with
    | [ "set"; i; v ] ->
      let i = int_of_string i in
      modify i;
      kv.slots.(i) <- v;
      kv.stamps.(i) <- Service.clock_of_nondet nondet;
      "ok"
    | [ "get"; i ] ->
      let i = int_of_string i in
      Printf.sprintf "%s@%Ld" kv.slots.(i) kv.stamps.(i)
    | _ -> "bad-op"
  in
  let get_obj i =
    let e = Base_codec.Xdr.encoder () in
    Base_codec.Xdr.str e kv.slots.(i);
    Base_codec.Xdr.i64 e kv.stamps.(i);
    Base_codec.Xdr.contents e
  in
  let put_objs objs =
    List.iter
      (fun (i, data) ->
        let d = Base_codec.Xdr.decoder data in
        kv.slots.(i) <- Base_codec.Xdr.read_str d;
        kv.stamps.(i) <- Base_codec.Xdr.read_i64 d)
      objs
  in
  ( kv,
    {
      Service.name = "kv";
      n_objects;
      execute;
      get_obj;
      put_objs;
      restart = (fun () -> kv.restarts <- kv.restarts + 1);
      propose_nondet = (fun ~clock_us ~operation:_ -> Service.nondet_of_clock clock_us);
      check_nondet =
        (fun ~clock_us ~operation:_ ~nondet ->
          Service.default_check_nondet ~max_skew_us:2_000_000L ~clock_us ~nondet);
      oids_of_op = Service.no_footprint;
    } )

let make_system ?(seed = 1L) ?(f = 1) ?(n_clients = 1) ?(checkpoint_period = 16)
    ?(drop_p = 0.0) ?batch_max ?max_inflight ?client_timeout_us ?viewchange_timeout_us
    ?standbys () =
  let config =
    Base_bft.Types.make_config ~checkpoint_period ~log_window:(checkpoint_period * 2)
      ?batch_max ?max_inflight ?client_timeout_us ?viewchange_timeout_us ?standbys ~f
      ~n_clients ()
  in
  let engine_config =
    {
      (Base_sim.Engine.default_config ~size_of:Base_core.Runtime.msg_size
         ~label_of:Base_core.Runtime.msg_label)
      with
      seed;
      drop_p;
    }
  in
  let kvs =
    Array.init (Base_bft.Types.group_size config) (fun _ -> None)
  in
  let make_wrapper rid =
    let kv, w = kv_wrapper () in
    kvs.(rid) <- Some kv;
    w
  in
  let sys = Base_core.Runtime.create ~engine_config ~config ~make_wrapper ~n_clients () in
  let kvs = Array.map Option.get kvs in
  (sys, kvs)

let set sys ~client i v =
  Base_core.Runtime.invoke_sync sys ~client ~operation:(Printf.sprintf "set:%d:%s" i v) ()

let get sys ~client i =
  Base_core.Runtime.invoke_sync sys ~client ~operation:(Printf.sprintf "get:%d" i) ()

let get_ro sys ~client i =
  Base_core.Runtime.invoke_sync sys ~client ~read_only:true
    ~operation:(Printf.sprintf "get:%d" i) ()

let value_part reply =
  match String.index_opt reply '@' with
  | Some k -> String.sub reply 0 k
  | None -> reply
