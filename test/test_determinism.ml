(* Order-pinning tests for the typed comparators introduced by the basecheck
   pass: each one fixes an ordering that the replication stack relies on for
   determinism, so pin it down before anyone "simplifies" it back to the
   polymorphic [compare]. *)

module Heap = Base_util.Heap
module Loc = Base_util.Loc_count
module St = Base_core.State_transfer
module Ow = Base_oodb.Oodb_wrapper
open Base_oodb.Oodb_proto

let test_heap_tie_break () =
  (* Equal keys must pop in insertion order — the simulator's event queue
     depends on it for run-to-run determinism. *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  List.iter (Heap.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c"); (0, "y") ];
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list (pair int string)))
    "min first, ties in insertion order"
    [ (0, "z"); (0, "y"); (1, "a"); (1, "b"); (1, "c") ]
    (drain [])

let test_loc_count_dir_deterministic () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "basecheck_loc_fixture" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name body =
    let oc = open_out (Filename.concat dir name) in
    output_string oc body;
    close_out oc
  in
  write "b.ml" "let x = 1\nlet y = 2;;\n";
  write "a.ml" "(* comment only *)\nlet z = 3\n";
  write "skip.txt" "not counted\n";
  let c1 = Loc.count_dir dir in
  let c2 = Loc.count_dir dir in
  Alcotest.(check bool) "two scans agree" true (c1 = c2);
  Alcotest.(check int) "files" 2 c1.Loc.files;
  Alcotest.(check int) "lines" 3 c1.Loc.lines

let test_state_transfer_obj_order () =
  (* Fetched objects install in ascending index order; the payload never
     participates. *)
  Alcotest.(check int) "index orders" (-1) (St.compare_obj (1, "zzz") (2, "aaa"));
  Alcotest.(check int) "payload ignored" 0 (St.compare_obj (5, "a") (5, "b"));
  let objs = [ (3, "c"); (1, "a"); (2, "b") ] in
  Alcotest.(check (list (pair int string)))
    "sort pins ascending indices"
    [ (1, "a"); (2, "b"); (3, "c") ]
    (List.sort St.compare_obj objs)

let test_oodb_canonical_order () =
  let fields = [ ("size", "2"); ("name", "x"); ("name", "a") ] in
  Alcotest.(check (list (pair string string)))
    "fields by name then value"
    [ ("name", "a"); ("name", "x"); ("size", "2") ]
    (List.sort Ow.compare_field fields);
  let r name index gen = (name, { index; gen }) in
  let refs = [ r "next" 2 0; r "child" 4 1; r "next" 1 5; r "next" 1 2 ] in
  let sorted = List.sort Ow.compare_ref refs in
  Alcotest.(check (list string))
    "refs by name then index then gen"
    [ "child:4.1"; "next:1.2"; "next:1.5"; "next:2.0" ]
    (List.map (fun (f, (o : aoid)) -> Printf.sprintf "%s:%d.%d" f o.index o.gen) sorted)

let suite =
  [
    Alcotest.test_case "heap tie-break" `Quick test_heap_tie_break;
    Alcotest.test_case "loc_count determinism" `Quick test_loc_count_dir_deterministic;
    Alcotest.test_case "state-transfer install order" `Quick test_state_transfer_obj_order;
    Alcotest.test_case "oodb canonical order" `Quick test_oodb_canonical_order;
  ]
