(* Unit tests of the open-loop load injector: arrival counts, seed
   determinism, independence from the protocol's randomness consumption,
   and bounded-backlog shedding past saturation. *)

module Load = Base_workload.Load
module Systems = Base_workload.Systems
module Runtime = Base_core.Runtime
module Metrics = Base_obs.Metrics

let make ?(n_clients = 8) ?(batch_max = 16) ?(seed = 11L) () =
  (Systems.make_registers ~seed ~n_clients ~batch_max ()).Systems.reg_runtime

let test_fixed_rate_arrival_count () =
  (* Fixed arrivals at rate r for duration d generate exactly r*d requests:
     one at the window start, then every 1/r until (exclusive) the end. *)
  let rt = make () in
  let load = Load.create ~arrivals:Load.Fixed ~rate_per_s:500.0 ~duration_us:1_000_000 rt in
  (match Load.run load with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let s = Load.stats load in
  Alcotest.(check int) "offered = rate x duration" 500 s.Load.offered;
  Alcotest.(check int) "all arrivals completed" 500 s.Load.completed;
  Alcotest.(check int) "nothing shed" 0 s.Load.shed;
  Alcotest.(check int) "histogram streams every completion" 500
    (Metrics.hist_count s.Load.latency_us)

let run_poisson ~sys_seed ~load_seed ~batch_max =
  let rt = make ~seed:sys_seed ~batch_max () in
  let load =
    Load.create ~seed:load_seed ~arrivals:Load.Poisson ~rate_per_s:800.0
      ~duration_us:500_000 rt
  in
  (match Load.run load with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Load.stats load

let test_poisson_deterministic_under_seed () =
  let a = run_poisson ~sys_seed:21L ~load_seed:7L ~batch_max:16 in
  let b = run_poisson ~sys_seed:21L ~load_seed:7L ~batch_max:16 in
  Alcotest.(check int) "same offered" a.Load.offered b.Load.offered;
  Alcotest.(check int) "same completed" a.Load.completed b.Load.completed;
  Alcotest.(check (float 0.0)) "same p99"
    (Metrics.quantile a.Load.latency_us 0.99)
    (Metrics.quantile b.Load.latency_us 0.99);
  (* A different load seed draws a different arrival stream. *)
  let c = run_poisson ~sys_seed:21L ~load_seed:8L ~batch_max:16 in
  Alcotest.(check bool) "different seed, different stream" true
    (c.Load.offered <> a.Load.offered || c.Load.completed <> a.Load.completed)

let test_arrivals_independent_of_protocol () =
  (* The injector draws from its own PRNG, so the offered workload is
     identical even when the system under it consumes engine randomness
     differently (here: radically different batching). *)
  let a = run_poisson ~sys_seed:21L ~load_seed:7L ~batch_max:1 in
  let b = run_poisson ~sys_seed:21L ~load_seed:7L ~batch_max:64 in
  Alcotest.(check int) "same arrival count across batch sizes" a.Load.offered b.Load.offered

let test_backlog_bounded_and_shedding_counted () =
  (* One client, offered load far past what it can serve, tiny backlog: the
     surplus is shed and accounted for, and the backlog drains by the end. *)
  let rt = make ~n_clients:1 () in
  let load =
    Load.create ~arrivals:Load.Fixed ~max_backlog:50 ~rate_per_s:20_000.0
      ~duration_us:200_000 rt
  in
  (match Load.run load with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let s = Load.stats load in
  Alcotest.(check int) "offered = rate x duration" 4_000 s.Load.offered;
  Alcotest.(check bool) "surplus shed" true (s.Load.shed > 0);
  Alcotest.(check bool) "backlog respected its bound" true (s.Load.backlog_peak <= 50);
  Alcotest.(check int) "every admitted arrival completed" s.Load.started s.Load.completed;
  Alcotest.(check int) "arrival accounting closes" s.Load.offered
    (s.Load.started + s.Load.shed);
  Alcotest.(check bool) "window throughput positive" true (Load.throughput_per_s load > 0.0)

let suite =
  [
    Alcotest.test_case "fixed-rate arrival count" `Quick test_fixed_rate_arrival_count;
    Alcotest.test_case "poisson deterministic under seed" `Quick
      test_poisson_deterministic_under_seed;
    Alcotest.test_case "arrivals independent of protocol" `Quick
      test_arrivals_independent_of_protocol;
    Alcotest.test_case "backlog bounded, shedding counted" `Quick
      test_backlog_bounded_and_shedding_counted;
  ]
