(* Batch-MAC equivalence and tamper suite.

   The hot path seals a broadcast by hashing the body once and MACing the
   32-byte digest per receiver over precomputed HMAC midstates.  This suite
   pins the two halves of that optimisation:

   - {e equivalence}: the batched primitives produce bit-identical tags to
     the naive ones ([mac_digest_for] = [mac_for], [mac_prepared] = [mac]),
     so the optimisation cannot weaken or change what is authenticated;
   - {e tamper}: because MACs bind the wire digest, corrupting any single
     in-flight byte voids verification at the receiver and is counted in
     [bft.reject.mac] / [bft.reject.decode] — exercised end-to-end through
     the runtime's corruption model, not just at the envelope level. *)

module M = Base_bft.Message
module Replica = Base_bft.Replica
module Runtime = Base_core.Runtime
module Engine = Base_sim.Engine
module Metrics = Base_obs.Metrics
module Auth = Base_crypto.Auth
module Hmac = Base_crypto.Hmac
module Sha256 = Base_crypto.Sha256
module Gen = QCheck2.Gen

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let chains = Auth.create ~seed:31L ~n_principals:8

(* [mac_digest_for] must agree with the naive per-message [mac_for] on
   every (sender, receiver) pair — including 32-byte binary strings, the
   shape the hot path feeds it. *)
let mac_digest_equivalence =
  qtest "mac_digest_for = mac_for, every pair"
    (Gen.pair Gen.string (Gen.pair (Gen.int_bound 7) (Gen.int_bound 7)))
    (fun (msg, (sender, receiver)) ->
      let digest = Sha256.digest msg in
      String.equal
        (Auth.mac_digest_for chains.(sender) ~receiver digest)
        (Auth.mac_for chains.(sender) ~receiver digest)
      && Auth.check_digest chains.(receiver) ~sender digest
           ~mac:(Auth.mac_digest_for chains.(sender) ~receiver digest))

let authenticator_equivalence =
  qtest "digest_authenticator = per-receiver mac_for vector" Gen.string (fun msg ->
      let digest = Sha256.digest msg in
      let batched = Auth.digest_authenticator chains.(3) ~n:8 digest in
      let naive = Array.init 8 (fun receiver -> Auth.mac_for chains.(3) ~receiver digest) in
      batched = naive)

(* The midstate trick one level down: preparing a key (ipad/opad compressed
   once) yields the same tags as the two-pass HMAC, for arbitrary keys —
   shorter, block-sized and longer-than-block (the hash-the-key path). *)
let prepared_hmac_equivalence =
  qtest "Hmac.mac_prepared = Hmac.mac"
    (Gen.pair (Gen.string_size (Gen.int_bound 200)) Gen.string)
    (fun (key, msg) ->
      let prep = Hmac.prepare ~key in
      String.equal (Hmac.mac_prepared prep msg) (Hmac.mac ~key msg)
      && Hmac.verify_prepared prep msg ~tag:(Hmac.mac ~key msg))

(* End-to-end tamper: corrupt every protocol message on the primary->backup
   link (single-byte wire flips via the runtime's corruption model) and let
   the system run.  Every corrupted delivery must be rejected — counted as
   a MAC or decode reject, nothing slips through — while the protocol
   masks the lossy link and keeps executing. *)
let test_corrupted_wire_counted_and_masked () =
  let sys, _ = Helpers.make_system ~seed:41L () in
  let engine = Runtime.engine sys in
  Engine.fault_corrupt engine ~src:0 ~dst:1 ~p:1.0
    ~until:(Base_sim.Sim_time.of_us max_int);
  Alcotest.(check string) "write completes despite corrupted link" "ok"
    (Helpers.set sys ~client:0 0 "v1");
  Alcotest.(check string) "read sees the write" "v1"
    (Helpers.value_part (Helpers.get sys ~client:0 0));
  let corrupted = (Engine.total_counters engine).Engine.corrupted_msgs in
  Alcotest.(check bool) "corruption actually happened" true (corrupted > 0);
  let st = Replica.stats (Runtime.replica sys 1).Runtime.replica in
  (* Only the 0->1 link corrupts, so replica 1 absorbs every corrupted
     delivery; each one lands in exactly one reject bucket. *)
  Alcotest.(check int) "every corrupted delivery rejected (MAC or decode)"
    corrupted
    (st.Replica.rejected_macs + st.Replica.rejected_decode);
  Alcotest.(check bool) "MAC rejections observed" true (st.Replica.rejected_macs > 0);
  Alcotest.(check int) "bft.reject.mac counter agrees" st.Replica.rejected_macs
    (Metrics.counter_value (Metrics.counter (Runtime.metrics sys) "bft.reject.mac"))

(* Envelope-level single-byte tamper, against live runtime keychains: a
   legitimate reply re-adopted from its own wire verifies; with any one
   byte flipped it must not.  (The exhaustive all-receivers loop lives in
   the bft-wire suite; this one pins the unicast/client path.) *)
let test_unicast_tamper_rejected () =
  let body =
    M.Reply { view = 0; timestamp = 7L; client = 6; replica = 1; result = "r" }
  in
  let env = M.seal_for chains.(1) ~sender:1 ~receiver:6 body in
  Alcotest.(check bool) "genuine reply verifies" true
    (M.verify chains.(6) ~receiver:6 env);
  for i = 0 to String.length env.M.wire - 1 do
    let tampered =
      String.mapi
        (fun j c -> if j = i then Char.chr (Char.code c lxor 0x80) else c)
        env.M.wire
    in
    match M.of_wire ~sender:1 ~macs:env.M.macs tampered with
    | Error _ -> ()
    | Ok adopted ->
      Alcotest.(check bool)
        (Printf.sprintf "byte %d flipped: reply rejected" i)
        false
        (M.verify chains.(6) ~receiver:6 adopted)
  done

let suite =
  [
    mac_digest_equivalence;
    authenticator_equivalence;
    prepared_hmac_equivalence;
    Alcotest.test_case "corrupted wire: counted and masked end-to-end" `Quick
      test_corrupted_wire_counted_and_masked;
    Alcotest.test_case "unicast reply: any byte flip rejected" `Quick
      test_unicast_tamper_rejected;
  ]
