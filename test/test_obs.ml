(* The observability layer: bucket-edge semantics, registry reset, JSON
   canonicalisation, and the headline property — two same-seed runs emit a
   byte-identical trace. *)

module Metrics = Base_obs.Metrics
module Trace = Base_obs.Trace
module Json = Base_obs.Json
module Runtime = Base_core.Runtime
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time

let test_bucket_edges () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 10.0; 20.0 |] m "edges" in
  Metrics.observe h 10.0;
  (* exactly on a bound: first bucket *)
  Metrics.observe h 10.0001;
  (* just above: second bucket *)
  Metrics.observe h 25.0;
  (* above the last bound: overflow slot *)
  Alcotest.(check (array int)) "bucket placement" [| 1; 1; 1 |] (Metrics.bucket_counts h);
  Alcotest.(check int) "count" 3 (Metrics.hist_count h);
  Metrics.observe h Float.nan;
  Alcotest.(check int) "NaN ignored" 3 (Metrics.hist_count h)

let test_histogram_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 10.0; 20.0; 40.0 |] m "q" in
  List.iter (Metrics.observe h) [ 5.0; 15.0; 15.0; 30.0 ];
  (* All mass up to rank 1 sits in the first bucket; quantile estimates stay
     within the bucket that holds the target rank. *)
  Alcotest.(check bool) "p25 in first bucket" true (Metrics.quantile h 0.25 <= 10.0);
  let p99 = Metrics.quantile h 0.99 in
  Alcotest.(check bool) "p99 in last occupied bucket" true (p99 > 20.0 && p99 <= 40.0)

let test_registration_conflicts () =
  let m = Metrics.create () in
  let c = Metrics.counter m "x" in
  Metrics.incr c;
  let c' = Metrics.counter m "x" in
  Metrics.incr c';
  Alcotest.(check int) "get-or-create shares state" 2 (Metrics.counter_value c);
  Alcotest.check_raises "kind clash raises"
    (Invalid_argument "Metrics: x already registered as a counter (wanted a histogram)")
    (fun () -> ignore (Metrics.histogram m "x"))

let test_reset_keeps_registrations () =
  (* Recovery zeroes an epoch's numbers without forgetting which metrics
     exist — names must survive so the export schema is stable. *)
  let m = Metrics.create () in
  let c = Metrics.counter m "epoch.ops" in
  let h = Metrics.histogram ~buckets:[| 1.0 |] m "epoch.lat" in
  Metrics.incr ~by:5 c;
  Metrics.observe h 0.5;
  Metrics.reset m;
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.hist_count h);
  Alcotest.(check (list string)) "registrations kept" [ "epoch.lat"; "epoch.ops" ]
    (Metrics.names m);
  Metrics.incr c;
  Alcotest.(check int) "usable after reset" 1 (Metrics.counter_value c)

let test_json_canonical () =
  let j =
    Json.obj
      [ ("b", Json.Int 1); ("a", Json.Float 2.0); ("c", Json.Float Float.nan) ]
  in
  Alcotest.(check string) "sorted keys, canonical floats, NaN -> null"
    {|{"a":2.0,"b":1,"c":null}|} (Json.to_string j)

let test_json_parse_roundtrip () =
  let j =
    Json.obj
      [
        ("counts", Json.List [ Json.Int 0; Json.Int (-3); Json.Int max_int ]);
        ("flag", Json.Bool true);
        ("floats", Json.List [ Json.Float 2.0; Json.Float 0.015625; Json.Float (-1.5e9) ]);
        ("missing", Json.Null);
        ("nested", Json.obj [ ("s", Json.Str "quote\" slash\\ tab\t ctl\x01") ]);
      ]
  in
  (* to_string o of_string is the identity on the module's own output —
     both compact and pretty. *)
  List.iter
    (fun rendered ->
      match Json.of_string rendered with
      | Ok parsed -> Alcotest.(check string) "round trip" (Json.to_string j) (Json.to_string parsed)
      | Error e -> Alcotest.fail e)
    [ Json.to_string j; Json.to_string_pretty j ];
  (* Int/Float distinction survives: "2.0" parses as Float, "2" as Int. *)
  (match Json.of_string "[2,2.0]" with
  | Ok (Json.List [ Json.Int 2; Json.Float 2.0 ]) -> ()
  | Ok _ | Error _ -> Alcotest.fail "number type mangled");
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" bad)
      | Error _ -> ())
    [ "{"; "[1,]"; "\"open"; "tru"; "{\"a\":1}x"; "" ]

let test_trace_events () =
  let tr = Trace.create () in
  (* Attribute order as given must not matter. *)
  Trace.event tr ~ts:5L ~name:"e" [ ("z", "1"); ("a", "2") ];
  Trace.event tr ~ts:6L ~name:"f" [ ("a", "2"); ("z", "1") ];
  let lines = String.split_on_char '\n' (String.trim (Trace.to_string tr)) in
  Alcotest.(check int) "two lines" 2 (List.length lines);
  Alcotest.(check string) "attrs sorted"
    {|{"attr.a":"2","attr.z":"1","event":"e","ts_us":5}|} (List.nth lines 0)

let test_trace_limit () =
  let tr = Trace.create ~limit:2 () in
  for i = 1 to 5 do
    Trace.event tr ~ts:(Int64.of_int i) ~name:"e" []
  done;
  Alcotest.(check int) "prefix kept" 2 (Trace.length tr);
  match Trace.events tr with
  | [ a; b ] ->
    Alcotest.(check int64) "first" 1L a.Trace.ts;
    Alcotest.(check int64) "second" 2L b.Trace.ts
  | _ -> Alcotest.fail "expected 2 events"

(* The property the benchmark JSON gate relies on: running the same seeded
   system twice produces byte-identical traces and reports. *)
let test_trace_determinism () =
  let run seed =
    let sys, _ = Helpers.make_system ~seed ~checkpoint_period:8 () in
    Runtime.enable_proactive_recovery ~reboot_us:50_000 ~period_us:400_000 sys;
    for i = 0 to 7 do
      ignore (Helpers.set sys ~client:0 i (Printf.sprintf "v%d" i))
    done;
    Engine.run
      ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_sec 2.0))
      (Runtime.engine sys);
    ( Trace.to_string (Runtime.trace sys),
      Json.to_string (Runtime.metrics_report sys) )
  in
  let trace1, report1 = run 42L in
  let trace2, report2 = run 42L in
  Alcotest.(check bool) "trace nonempty" true (String.length trace1 > 0);
  Alcotest.(check string) "same seed, same trace" trace1 trace2;
  Alcotest.(check string) "same seed, same report" report1 report2;
  let trace3, _ = run 43L in
  Alcotest.(check bool) "different seed, different trace" true
    (not (String.equal trace1 trace3))

let test_runtime_phase_metrics () =
  let sys, _ = Helpers.make_system ~checkpoint_period:8 () in
  for i = 0 to 7 do
    ignore (Helpers.set sys ~client:0 i "x")
  done;
  let m = Runtime.metrics sys in
  let h = Metrics.histogram m "bft.phase.total_us" in
  Alcotest.(check bool) "phase latencies recorded" true (Metrics.hist_count h > 0);
  Alcotest.(check bool) "positive mean" true (Metrics.hist_mean h > 0.0)

let suite =
  [
    Alcotest.test_case "histogram bucket edges" `Quick test_bucket_edges;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "registration conflicts" `Quick test_registration_conflicts;
    Alcotest.test_case "reset keeps registrations" `Quick test_reset_keeps_registrations;
    Alcotest.test_case "json canonical form" `Quick test_json_canonical;
    Alcotest.test_case "json parse round-trips" `Quick test_json_parse_roundtrip;
    Alcotest.test_case "trace renders sorted attrs" `Quick test_trace_events;
    Alcotest.test_case "trace honours its limit" `Quick test_trace_limit;
    Alcotest.test_case "same-seed runs trace identically" `Quick test_trace_determinism;
    Alcotest.test_case "replica phases reach the registry" `Quick test_runtime_phase_metrics;
  ]
