(* Wire-format tests of the BFT protocol messages: encode/decode round-trips
   (property-based), MAC envelope behaviour, and rejection of malformed
   input. *)

module M = Base_bft.Message
module Types = Base_bft.Types
module Auth = Base_crypto.Auth
module Digest = Base_crypto.Digest_t
module Gen = QCheck2.Gen

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let gen_digest = Gen.map (fun s -> Digest.of_string s) Gen.string

let gen_request =
  Gen.map
    (fun ((client, ts), (op, ro)) ->
      { M.client; timestamp = Int64.of_int ts; operation = op; read_only = ro })
    (Gen.pair (Gen.pair (Gen.int_range (-1) 50) Gen.nat) (Gen.pair Gen.string Gen.bool))

let gen_pre_prepare =
  Gen.map3
    (fun (view, seq) (digest, requests) nondet ->
      { M.view; seq; digest; requests; nondet })
    (Gen.pair (Gen.int_bound 100) (Gen.int_bound 10_000))
    (Gen.pair gen_digest (Gen.list_size (Gen.int_bound 5) gen_request))
    Gen.string

let gen_proof =
  Gen.map3
    (fun (pp_view, pp_seq) (pp_digest, pp_requests) pp_nondet ->
      { M.pp_view; pp_seq; pp_digest; pp_requests; pp_nondet })
    (Gen.pair (Gen.int_bound 100) (Gen.int_bound 10_000))
    (Gen.pair gen_digest (Gen.list_size (Gen.int_bound 3) gen_request))
    Gen.string

let gen_body =
  Gen.oneof
    [
      Gen.map (fun r -> M.Request r) gen_request;
      Gen.map (fun p -> M.Pre_prepare p) gen_pre_prepare;
      Gen.map3
        (fun view seq (digest, replica) -> M.Prepare { view; seq; digest; replica })
        (Gen.int_bound 50) (Gen.int_bound 1000)
        (Gen.pair gen_digest (Gen.int_bound 6));
      Gen.map3
        (fun view seq (digest, replica) -> M.Commit { view; seq; digest; replica })
        (Gen.int_bound 50) (Gen.int_bound 1000)
        (Gen.pair gen_digest (Gen.int_bound 6));
      Gen.map3
        (fun view ts (result, (client, replica)) ->
          M.Reply { view; timestamp = Int64.of_int ts; client; replica; result })
        (Gen.int_bound 50) Gen.nat
        (Gen.pair Gen.string (Gen.pair (Gen.int_bound 20) (Gen.int_bound 6)));
      Gen.map3
        (fun seq digest replica -> M.Checkpoint { seq; digest; replica })
        (Gen.int_bound 1000) gen_digest (Gen.int_bound 6);
      Gen.map3
        (fun (new_view, last_stable) (stable_digest, prepared) replica ->
          M.View_change { new_view; last_stable; stable_digest; prepared; replica })
        (Gen.pair (Gen.int_bound 50) (Gen.int_bound 1000))
        (Gen.pair gen_digest (Gen.list_size (Gen.int_bound 3) gen_proof))
        (Gen.int_bound 6);
      Gen.map3
        (fun nv_view nv_view_changes nv_pre_prepares ->
          M.New_view { nv_view; nv_view_changes; nv_pre_prepares })
        (Gen.int_bound 50)
        (Gen.list_size (Gen.int_bound 4) (Gen.pair (Gen.int_bound 6) (Gen.int_bound 1000)))
        (Gen.list_size (Gen.int_bound 3) gen_pre_prepare);
      Gen.map3
        (fun st_view st_last_exec (st_h, st_replica) ->
          M.Status { st_view; st_last_exec; st_h; st_replica })
        (Gen.int_bound 50) (Gen.int_bound 1000)
        (Gen.pair (Gen.int_bound 1000) (Gen.int_bound 6));
    ]

let body_roundtrip =
  qtest "message encode/decode round-trip" gen_body (fun body ->
      M.decode_body (M.encode_body body) = Ok body)

let test_decode_garbage () =
  List.iter
    (fun s ->
      match M.decode_body s with
      | Ok _ -> Alcotest.failf "garbage %S decoded" s
      | Error _ -> ())
    [ ""; "\x00"; "\x00\x00\x00\x63"; String.make 40 '\xff' ]

let test_envelope_macs () =
  let chains = Auth.create ~seed:2L ~n_principals:6 in
  let body = M.Prepare { view = 1; seq = 2; digest = Digest.of_string "d"; replica = 3 } in
  let env = M.seal chains.(3) ~sender:3 ~n_receivers:6 body in
  for receiver = 0 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "receiver %d verifies" receiver)
      true
      (M.verify chains.(receiver) ~receiver env)
  done;
  (* MACs bind the wire bytes: re-adopting the envelope's encoding through
     the wire path verifies, but flipping any single byte of it voids every
     receiver's MAC (decode may still succeed — e.g. a pad byte — so this
     is strictly stronger than body inequality). *)
  (match M.of_wire ~sender:3 ~macs:env.M.macs env.M.wire with
  | Error e -> Alcotest.failf "own wire bytes failed to decode: %s" e
  | Ok readopted ->
    for receiver = 0 to 5 do
      Alcotest.(check bool)
        (Printf.sprintf "receiver %d verifies re-adopted wire" receiver)
        true
        (M.verify chains.(receiver) ~receiver readopted)
    done);
  for i = 0 to String.length env.M.wire - 1 do
    let tampered_wire =
      String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c) env.M.wire
    in
    match M.of_wire ~sender:3 ~macs:env.M.macs tampered_wire with
    | Error _ -> ()  (* decode already rejected the corruption: fine *)
    | Ok tampered ->
      for receiver = 0 to 5 do
        Alcotest.(check bool)
          (Printf.sprintf "byte %d tampered: receiver %d rejects" i receiver)
          false
          (M.verify chains.(receiver) ~receiver tampered)
      done
  done

let test_request_digest_stability () =
  let r = { M.client = 7; timestamp = 9L; operation = "op"; read_only = false } in
  Alcotest.(check bool) "digest deterministic" true
    (Digest.equal (M.request_digest r) (M.request_digest r));
  let r' = { r with M.operation = "op2" } in
  Alcotest.(check bool) "digest separates operations" false
    (Digest.equal (M.request_digest r) (M.request_digest r'))

let suite =
  [
    body_roundtrip;
    Alcotest.test_case "garbage rejected" `Quick test_decode_garbage;
    Alcotest.test_case "envelope MACs" `Quick test_envelope_macs;
    Alcotest.test_case "request digest" `Quick test_request_digest_stability;
  ]
