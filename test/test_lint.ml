(* basecheck fixtures: one bad snippet per rule, checked under a
   repo-relative name that activates every rule scope, plus a clean file
   that must produce no findings.  The fixtures live in test/lint/ so they
   are parsed but never compiled. *)

module C = Basecheck_lib.Checks
module Typed = Basecheck_lib.Typed_checks

(* Fixtures sit next to the test executable; fall back to cwd so the suite
   also runs from the source tree. *)
let fixture name =
  let local = Filename.concat (Filename.dirname Sys.executable_name) "lint" in
  Filename.concat (if Sys.file_exists local then local else "lint") name

(* The compiled fixtures' .cmt files, produced by the lint_typed_fixtures
   library in test/lint. *)
let fixture_cmt name =
  Filename.concat
    (Filename.concat (Filename.dirname (fixture "x")) ".lint_typed_fixtures.objs/byte")
    ("lint_typed_fixtures__" ^ String.capitalize_ascii name ^ ".cmt")

let findings path rel =
  match C.check_file ~rel path with
  | Error e -> Alcotest.failf "%s: %s" path e
  | Ok fs -> fs

let rule_ids fs = List.sort_uniq String.compare (List.map (fun f -> C.rule_name f.C.rule) fs)

let check_fixture name expected_rule expected_count =
  let fs = findings (fixture name) ("lib/bft/" ^ name) in
  Alcotest.(check (list string))
    (name ^ " flags only " ^ expected_rule)
    [ expected_rule ] (rule_ids fs);
  Alcotest.(check int) (name ^ " finding count") expected_count (List.length fs)

let test_bad_fixtures () =
  check_fixture "d1_bad.ml" "D1" 4;
  check_fixture "d2_bad.ml" "D2" 3;
  check_fixture "d3_bad.ml" "D3" 2;
  check_fixture "d4_bad.ml" "D4" 3;
  check_fixture "e1_bad.ml" "E1" 3

let test_clean_fixture () =
  Alcotest.(check (list string))
    "clean.ml produces no findings" []
    (rule_ids (findings (fixture "clean.ml") "lib/bft/clean.ml"))

let test_rule_scoping () =
  (* The same E1 fixture outside a Byzantine-facing path is not flagged. *)
  Alcotest.(check (list string))
    "E1 limited to Byzantine-facing paths" []
    (rule_ids (findings (fixture "e1_bad.ml") "lib/util/e1_bad.ml"));
  (* D4 only applies to library code: executables may exit. *)
  Alcotest.(check (list string))
    "D4 limited to lib/" []
    (rule_ids (findings (fixture "d4_bad.ml") "bin/d4_bad.ml"))

let test_finding_format () =
  match findings (fixture "d3_bad.ml") "lib/bft/d3_bad.ml" with
  | f :: _ ->
    let s = C.pp_finding f in
    Alcotest.(check bool)
      (Printf.sprintf "pp_finding %S has file:line: [RULE] shape" s)
      true
      (String.length s > 0
      && String.sub s 0 (String.length "lib/bft/d3_bad.ml:") = "lib/bft/d3_bad.ml:"
      && Base_util.Str_contains.contains s "[D3]")
  | [] -> Alcotest.fail "expected findings in d3_bad.ml"

let typed_findings name rel =
  match Typed.check_cmt ~rel (fixture_cmt name) with
  | Error e -> Alcotest.failf "%s: %s" name e
  | Ok fs -> fs

(* The two documented blind spots of the syntactic pass, each proven
   closed: the fixture is clean under one backend and flagged under the
   other. *)
let test_typed_d1_blind_spot () =
  let rel = "lib/bft/d1_typed_bad.ml" in
  Alcotest.(check (list string))
    "syntactic pass is blind to (=) on structured variables" []
    (rule_ids (findings (fixture "d1_typed_bad.ml") rel));
  let fs = typed_findings "d1_typed_bad" rel in
  Alcotest.(check (list string)) "typed pass flags only D1" [ "D1" ] (rule_ids fs);
  Alcotest.(check int) "one finding per comparison site" 3 (List.length fs)

let test_typed_d3_cross_item_sort () =
  let rel = "lib/bft/d3_typed_ok.ml" in
  Alcotest.(check (list string))
    "syntactic pass false-positives on the cross-item helper" [ "D3" ]
    (rule_ids (findings (fixture "d3_typed_ok.ml") rel));
  Alcotest.(check (list string))
    "typed pass resolves the helper and accepts" []
    (rule_ids (typed_findings "d3_typed_ok" rel))

let test_typed_env_reconstruction () =
  (* A weakened typed run (unreconstructable environments) must not pass
     silently; the fixture units reconstruct fully. *)
  Alcotest.(check int) "no environment failures" 0 !Typed.env_failures

let test_allowlist_roundtrip () =
  let tmp = Filename.temp_file "allowlist" ".sexp" in
  let ws =
    [
      { C.w_file = "lib/bft/replica.ml"; w_rule = C.D3; w_justification = "say \"why\"" };
      { C.w_file = "lib/codec/xdr.ml"; w_rule = C.E1; w_justification = "guard" };
    ]
  in
  C.save_allowlist tmp ws;
  (match C.load_allowlist tmp with
  | Error e -> Alcotest.failf "reload failed: %s" e
  | Ok ws' ->
    Alcotest.(check int) "entries survive" 2 (List.length ws');
    Alcotest.(check bool) "sorted + quoted justification survives" true
      (ws' = List.sort C.compare_waiver ws));
  Sys.remove tmp

let suite =
  [
    Alcotest.test_case "bad fixtures flag the right rule" `Quick test_bad_fixtures;
    Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
    Alcotest.test_case "rule scoping" `Quick test_rule_scoping;
    Alcotest.test_case "finding format" `Quick test_finding_format;
    Alcotest.test_case "typed: D1 on structured variables" `Quick
      test_typed_d1_blind_spot;
    Alcotest.test_case "typed: D3 cross-item sort helper" `Quick
      test_typed_d3_cross_item_sort;
    Alcotest.test_case "typed: environments reconstruct" `Quick
      test_typed_env_reconstruction;
    Alcotest.test_case "allowlist round-trip" `Quick test_allowlist_roundtrip;
  ]
