(* basecheck fixtures: one bad snippet per rule, checked under a
   repo-relative name that activates every rule scope, plus a clean file
   that must produce no findings.  The fixtures live in test/lint/ so they
   are parsed but never compiled. *)

module C = Basecheck_lib.Checks
module Typed = Basecheck_lib.Typed_checks
module Taint = Basecheck_lib.Typed_taint

(* Fixtures sit next to the test executable; fall back to cwd so the suite
   also runs from the source tree. *)
let fixture name =
  let local = Filename.concat (Filename.dirname Sys.executable_name) "lint" in
  Filename.concat (if Sys.file_exists local then local else "lint") name

(* The compiled fixtures' .cmt files, produced by the lint_typed_fixtures
   library in test/lint. *)
let fixture_cmt name =
  Filename.concat
    (Filename.concat (Filename.dirname (fixture "x")) ".lint_typed_fixtures.objs/byte")
    ("lint_typed_fixtures__" ^ String.capitalize_ascii name ^ ".cmt")

let findings path rel =
  match C.check_file ~rel path with
  | Error e -> Alcotest.failf "%s: %s" path e
  | Ok fs -> fs

let rule_ids fs = List.sort_uniq String.compare (List.map (fun f -> C.rule_name f.C.rule) fs)

let check_fixture name expected_rule expected_count =
  let fs = findings (fixture name) ("lib/bft/" ^ name) in
  Alcotest.(check (list string))
    (name ^ " flags only " ^ expected_rule)
    [ expected_rule ] (rule_ids fs);
  Alcotest.(check int) (name ^ " finding count") expected_count (List.length fs)

let test_bad_fixtures () =
  check_fixture "d1_bad.ml" "D1" 4;
  check_fixture "d2_bad.ml" "D2" 3;
  check_fixture "d3_bad.ml" "D3" 2;
  check_fixture "d4_bad.ml" "D4" 3;
  check_fixture "e1_bad.ml" "E1" 3

let test_clean_fixture () =
  Alcotest.(check (list string))
    "clean.ml produces no findings" []
    (rule_ids (findings (fixture "clean.ml") "lib/bft/clean.ml"))

let test_rule_scoping () =
  (* The same E1 fixture outside a Byzantine-facing path is not flagged. *)
  Alcotest.(check (list string))
    "E1 limited to Byzantine-facing paths" []
    (rule_ids (findings (fixture "e1_bad.ml") "lib/util/e1_bad.ml"));
  (* D4 only applies to library code: executables may exit. *)
  Alcotest.(check (list string))
    "D4 limited to lib/" []
    (rule_ids (findings (fixture "d4_bad.ml") "bin/d4_bad.ml"))

let test_finding_format () =
  match findings (fixture "d3_bad.ml") "lib/bft/d3_bad.ml" with
  | f :: _ ->
    let s = C.pp_finding f in
    Alcotest.(check bool)
      (Printf.sprintf "pp_finding %S has file:line: [RULE] shape" s)
      true
      (String.length s > 0
      && String.sub s 0 (String.length "lib/bft/d3_bad.ml:") = "lib/bft/d3_bad.ml:"
      && Base_util.Str_contains.contains s "[D3]")
  | [] -> Alcotest.fail "expected findings in d3_bad.ml"

let typed_findings name rel =
  match Typed.check_cmt ~rel (fixture_cmt name) with
  | Error e -> Alcotest.failf "%s: %s" name e
  | Ok fs -> fs

(* The two documented blind spots of the syntactic pass, each proven
   closed: the fixture is clean under one backend and flagged under the
   other. *)
let test_typed_d1_blind_spot () =
  let rel = "lib/bft/d1_typed_bad.ml" in
  Alcotest.(check (list string))
    "syntactic pass is blind to (=) on structured variables" []
    (rule_ids (findings (fixture "d1_typed_bad.ml") rel));
  let fs = typed_findings "d1_typed_bad" rel in
  Alcotest.(check (list string)) "typed pass flags only D1" [ "D1" ] (rule_ids fs);
  Alcotest.(check int) "one finding per comparison site" 3 (List.length fs)

let test_typed_d3_cross_item_sort () =
  let rel = "lib/bft/d3_typed_ok.ml" in
  Alcotest.(check (list string))
    "syntactic pass false-positives on the cross-item helper" [ "D3" ]
    (rule_ids (findings (fixture "d3_typed_ok.ml") rel));
  Alcotest.(check (list string))
    "typed pass resolves the helper and accepts" []
    (rule_ids (typed_findings "d3_typed_ok" rel))

let test_typed_env_reconstruction () =
  (* A weakened typed run (unreconstructable environments) must not pass
     silently; the fixture units reconstruct fully. *)
  Alcotest.(check int) "no environment failures" 0 !Typed.env_failures

(* --- taint backend ---------------------------------------------------------- *)

(* The tests run against the repo's real registry, so they also pin that
   the checked-in sanitizers.sexp parses and keeps the entries the
   fixtures rely on. *)
let registry =
  lazy
    (let candidates =
       [
         Filename.concat (Filename.dirname Sys.executable_name) "../lint/sanitizers.sexp";
         "../lint/sanitizers.sexp";
         "lint/sanitizers.sexp";
       ]
     in
     let path =
       match List.find_opt Sys.file_exists candidates with
       | Some p -> p
       | None -> Alcotest.fail "sanitizers.sexp not found near the test executable"
     in
     match Taint.load_registry path with
     | Ok rg -> rg
     | Error e -> Alcotest.failf "registry: %s" e)

let taint_findings ?(rel_dir = "lib/bft/") name =
  let rel = rel_dir ^ name ^ ".ml" in
  match Taint.check_cmt ~registry:(Lazy.force registry) ~rel (fixture_cmt name) with
  | Error e -> Alcotest.failf "%s: %s" name e
  | Ok fs -> List.map (fun f -> (f.C.line, C.rule_name f.C.rule)) fs

(* Exact (line, rule) pins in both directions: the bad fixture flags
   precisely these sites, the ok fixture (same shapes, sanitized) flags
   nothing. *)
let test_taint_b1 () =
  Alcotest.(check (list (pair int string)))
    "b1_bad: allocation, byte range, loop bound, via-helper"
    [ (11, "B1"); (14, "B1"); (18, "B1"); (25, "B1") ]
    (taint_findings "b1_bad");
  Alcotest.(check (list (pair int string))) "b1_ok: all sanitized" []
    (taint_findings "b1_ok")

let test_taint_b2 () =
  Alcotest.(check (list (pair int string)))
    "b2_bad: mutation sequenced before verification"
    [ (14, "B2"); (19, "B2") ]
    (taint_findings "b2_bad");
  Alcotest.(check (list (pair int string))) "b2_ok: verify dominates or no handler" []
    (taint_findings "b2_ok")

let test_taint_b3 () =
  Alcotest.(check (list (pair int string)))
    "b3_bad: watermark setfield, timer field call, tree coordinate"
    [ (19, "B3"); (22, "B3"); (25, "B3") ]
    (taint_findings "b3_bad");
  Alcotest.(check (list (pair int string))) "b3_ok: all validated" []
    (taint_findings "b3_ok")

let test_taint_cross_module () =
  (* The source-to-sink chain crosses a compilation-unit boundary; only
     the joint fixpoint over both units connects it. *)
  let pairs =
    [
      ("lib/bft/taint_helper.ml", fixture_cmt "taint_helper");
      ("lib/bft/b1_cross_bad.ml", fixture_cmt "b1_cross_bad");
    ]
  in
  match Taint.check_cmts ~registry:(Lazy.force registry) pairs with
  | Error e -> Alcotest.failf "cross-module fixture: %s" e
  | Ok fs ->
    Alcotest.(check (list (triple string int string)))
      "only the caller's allocation is flagged, through the helper"
      [ ("lib/bft/b1_cross_bad.ml", 11, "B1") ]
      (List.map (fun f -> (f.C.file, f.C.line, C.rule_name f.C.rule)) fs)

let test_taint_blind_spots () =
  (* Each documented blind spot (doc/lint.md) stays a blind spot until
     deliberately closed: the fixture must produce zero findings. *)
  Alcotest.(check (list (pair int string)))
    "taint_blind: heap laundering, implicit flow, recursion depth, \
     trusted-parameter bound, deferred callback"
    []
    (taint_findings "taint_blind")

let test_taint_rule_scoping () =
  (* B2 is scoped to lib/bft/: the same handler outside it is silent. *)
  Alcotest.(check (list (pair int string)))
    "B2 limited to lib/bft/" []
    (taint_findings ~rel_dir:"lib/base_core/" "b2_bad")

let test_taint_env_reconstruction () =
  Alcotest.(check int) "no environment failures during taint runs" 0
    !Typed.env_failures

let test_allowlist_roundtrip () =
  let tmp = Filename.temp_file "allowlist" ".sexp" in
  let ws =
    [
      { C.w_file = "lib/bft/replica.ml"; w_rule = C.D3; w_justification = "say \"why\"" };
      { C.w_file = "lib/codec/xdr.ml"; w_rule = C.E1; w_justification = "guard" };
    ]
  in
  C.save_allowlist tmp ws;
  (match C.load_allowlist tmp with
  | Error e -> Alcotest.failf "reload failed: %s" e
  | Ok ws' ->
    Alcotest.(check int) "entries survive" 2 (List.length ws');
    Alcotest.(check bool) "sorted + quoted justification survives" true
      (ws' = List.sort C.compare_waiver ws));
  Sys.remove tmp

let suite =
  [
    Alcotest.test_case "bad fixtures flag the right rule" `Quick test_bad_fixtures;
    Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
    Alcotest.test_case "rule scoping" `Quick test_rule_scoping;
    Alcotest.test_case "finding format" `Quick test_finding_format;
    Alcotest.test_case "typed: D1 on structured variables" `Quick
      test_typed_d1_blind_spot;
    Alcotest.test_case "typed: D3 cross-item sort helper" `Quick
      test_typed_d3_cross_item_sort;
    Alcotest.test_case "typed: environments reconstruct" `Quick
      test_typed_env_reconstruction;
    Alcotest.test_case "taint: B1 both directions" `Quick test_taint_b1;
    Alcotest.test_case "taint: B2 both directions" `Quick test_taint_b2;
    Alcotest.test_case "taint: B3 both directions" `Quick test_taint_b3;
    Alcotest.test_case "taint: cross-module chain" `Quick test_taint_cross_module;
    Alcotest.test_case "taint: blind spots stay pinned" `Quick test_taint_blind_spots;
    Alcotest.test_case "taint: rule scoping" `Quick test_taint_rule_scoping;
    Alcotest.test_case "taint: environments reconstruct" `Quick
      test_taint_env_reconstruction;
    Alcotest.test_case "allowlist round-trip" `Quick test_allowlist_roundtrip;
  ]
