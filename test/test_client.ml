(* Unit tests of the client protocol against a scripted transport: reply
   quorums, Byzantine reply rejection, retransmission, and the read-only
   fallback — all without a simulator. *)

module Client = Base_bft.Client
module Message = Base_bft.Message
module Types = Base_bft.Types
module Auth = Base_crypto.Auth

type world = {
  config : Types.config;
  chains : Auth.keychain array;
  client : Client.t;
  sent : (int * Message.body) Queue.t;  (* (dst, body) from the client *)
  timers : (int * string * int) Queue.t;  (* (id, tag, payload) armed *)
  mutable now : int64;
  mutable next_timer : int;
}

let make_world () =
  let config = Types.make_config ~f:1 ~n_clients:1 () in
  let chains = Auth.create ~seed:3L ~n_principals:config.Types.n_principals in
  let sent = Queue.create () in
  let timers = Queue.create () in
  let w_ref = ref None in
  let net =
    {
      Client.send = (fun ~dst env -> Queue.add (dst, env.Message.body) sent);
      set_timer =
        (fun ~after_us:_ ~tag ~payload ->
          let w = Option.get !w_ref in
          w.next_timer <- w.next_timer + 1;
          Queue.add (w.next_timer, tag, payload) timers;
          w.next_timer);
      cancel_timer = (fun _ -> ());
      now_us = (fun () -> (Option.get !w_ref).now);
    }
  in
  let client = Client.create ~config ~id:4 ~keychain:chains.(4) ~net () in
  let w = { config; chains; client; sent; timers; now = 0L; next_timer = 0 } in
  w_ref := Some w;
  w

let drain q = Queue.fold (fun acc x -> x :: acc) [] q |> List.rev

let reply w ~replica ~timestamp ~result =
  let body =
    Message.Reply { view = 0; timestamp; client = 4; replica; result }
  in
  let env = Message.seal_for w.chains.(replica) ~sender:replica ~receiver:4 body in
  Client.receive w.client env

let test_request_broadcast () =
  let w = make_world () in
  Client.invoke w.client ~operation:"op" (fun _ -> ());
  let dsts = List.map fst (drain w.sent) in
  Alcotest.(check (list int)) "request to all replicas" [ 0; 1; 2; 3 ] (List.sort compare dsts)

let test_rw_quorum_f_plus_1 () =
  let w = make_world () in
  let result = ref None in
  Client.invoke w.client ~operation:"op" (fun r -> result := Some r);
  reply w ~replica:0 ~timestamp:0L ~result:"answer";
  Alcotest.(check (option string)) "one reply is not enough" None !result;
  reply w ~replica:1 ~timestamp:0L ~result:"answer";
  Alcotest.(check (option string)) "f+1 matching accepted" (Some "answer") !result

let test_byzantine_reply_outvoted () =
  let w = make_world () in
  let result = ref None in
  Client.invoke w.client ~operation:"op" (fun r -> result := Some r);
  reply w ~replica:0 ~timestamp:0L ~result:"lie";
  reply w ~replica:1 ~timestamp:0L ~result:"truth";
  Alcotest.(check (option string)) "no quorum yet" None !result;
  reply w ~replica:2 ~timestamp:0L ~result:"truth";
  Alcotest.(check (option string)) "truth wins" (Some "truth") !result

let test_duplicate_replies_not_double_counted () =
  let w = make_world () in
  let result = ref None in
  Client.invoke w.client ~operation:"op" (fun r -> result := Some r);
  reply w ~replica:0 ~timestamp:0L ~result:"x";
  reply w ~replica:0 ~timestamp:0L ~result:"x";
  reply w ~replica:0 ~timestamp:0L ~result:"x";
  Alcotest.(check (option string)) "same replica counted once" None !result

let test_stale_timestamp_ignored () =
  let w = make_world () in
  let r1 = ref None in
  Client.invoke w.client ~operation:"first" (fun r -> r1 := Some r);
  reply w ~replica:0 ~timestamp:0L ~result:"a";
  reply w ~replica:1 ~timestamp:0L ~result:"a";
  Alcotest.(check (option string)) "first done" (Some "a") !r1;
  let r2 = ref None in
  Client.invoke w.client ~operation:"second" (fun r -> r2 := Some r);
  (* Replays of the old reply must not satisfy the new request. *)
  reply w ~replica:2 ~timestamp:0L ~result:"a";
  reply w ~replica:3 ~timestamp:0L ~result:"a";
  Alcotest.(check (option string)) "replays ignored" None !r2

let test_ro_needs_2f_plus_1 () =
  let w = make_world () in
  let result = ref None in
  Client.invoke w.client ~read_only:true ~operation:"ro" (fun r -> result := Some r);
  reply w ~replica:0 ~timestamp:0L ~result:"v";
  reply w ~replica:1 ~timestamp:0L ~result:"v";
  Alcotest.(check (option string)) "2 matching not enough for ro" None !result;
  reply w ~replica:2 ~timestamp:0L ~result:"v";
  Alcotest.(check (option string)) "2f+1 matching accepted" (Some "v") !result

let test_ro_fallback_after_retries () =
  let w = make_world () in
  Client.invoke w.client ~read_only:true ~operation:"ro" (fun _ -> ());
  Queue.clear w.sent;
  (* First timeout: plain retransmission, still read-only. *)
  Client.on_timer w.client ~tag:"client" ~payload:0;
  let ro_retry =
    List.exists
      (function _, Message.Request r -> r.Message.read_only | _ -> false)
      (drain w.sent)
  in
  Alcotest.(check bool) "first retry still read-only" true ro_retry;
  Queue.clear w.sent;
  (* Second timeout: falls back to a regular ordered request. *)
  Client.on_timer w.client ~tag:"client" ~payload:0;
  let fell_back =
    List.exists
      (function _, Message.Request r -> not r.Message.read_only | _ -> false)
      (drain w.sent)
  in
  Alcotest.(check bool) "fallback to read-write" true fell_back

let test_queueing_outstanding_ops () =
  let w = make_world () in
  let order = ref [] in
  Client.invoke w.client ~operation:"one" (fun r -> order := r :: !order);
  Client.invoke w.client ~operation:"two" (fun r -> order := r :: !order);
  Alcotest.(check int) "both tracked" 2 (Client.outstanding w.client);
  reply w ~replica:0 ~timestamp:0L ~result:"r1";
  reply w ~replica:1 ~timestamp:0L ~result:"r1";
  (* Completing the first dispatches the second (timestamp 1). *)
  reply w ~replica:0 ~timestamp:1L ~result:"r2";
  reply w ~replica:1 ~timestamp:1L ~result:"r2";
  Alcotest.(check (list string)) "in order" [ "r2"; "r1" ] !order;
  Alcotest.(check int) "drained" 0 (Client.outstanding w.client)

let test_forged_reply_rejected () =
  let w = make_world () in
  let result = ref None in
  Client.invoke w.client ~operation:"op" (fun r -> result := Some r);
  (* Replica 3 forges replies claiming to be replicas 0 and 1. *)
  List.iter
    (fun claimed ->
      let body =
        Message.Reply { view = 0; timestamp = 0L; client = 4; replica = claimed; result = "evil" }
      in
      let env =
        {
          (Message.seal_for w.chains.(3) ~sender:3 ~receiver:4 body) with
          Message.sender = claimed;
        }
      in
      Client.receive w.client env)
    [ 0; 1 ];
  Alcotest.(check (option string)) "forged macs rejected" None !result

(* Regression (linearizability hole): the read-only fallback must not reuse
   the read-only attempt's timestamp — late tentative replies from the
   abandoned attempt would otherwise count toward the weaker f+1 ordered
   quorum, completing a "read" from f+1 stale tentative replies. *)
let test_ro_fallback_ignores_stale_tentative () =
  let w = make_world () in
  let result = ref None in
  Client.invoke w.client ~read_only:true ~operation:"ro" (fun r -> result := Some r);
  (* Two timeouts: retransmit, then fall back to an ordered request. *)
  Client.on_timer w.client ~tag:"client" ~payload:0;
  Client.on_timer w.client ~tag:"client" ~payload:0;
  (* Late tentative replies from the aborted read-only attempt (timestamp 0)
     arrive only now — f+1 of them, which would complete the fallback if the
     timestamp were shared. *)
  reply w ~replica:0 ~timestamp:0L ~result:"stale";
  reply w ~replica:1 ~timestamp:0L ~result:"stale";
  Alcotest.(check (option string)) "stale tentative replies ignored" None !result;
  (* The ordered replies for the fallback's own (fresh) timestamp win. *)
  reply w ~replica:2 ~timestamp:1L ~result:"fresh";
  reply w ~replica:3 ~timestamp:1L ~result:"fresh";
  Alcotest.(check (option string)) "ordered result accepted" (Some "fresh") !result

let test_ro_fallback_uses_fresh_timestamp () =
  let w = make_world () in
  Client.invoke w.client ~read_only:true ~operation:"ro" (fun _ -> ());
  Client.on_timer w.client ~tag:"client" ~payload:0;
  Queue.clear w.sent;
  Client.on_timer w.client ~tag:"client" ~payload:0;
  List.iter
    (function
      | _, Message.Request r ->
        Alcotest.(check bool) "fallback is ordered" false r.Message.read_only;
        Alcotest.(check int64) "fallback timestamp bumped" 1L r.Message.timestamp
      | _ -> Alcotest.fail "unexpected message")
    (drain w.sent);
  (* The next request must not collide with the bumped timestamp. *)
  let result = ref None in
  reply w ~replica:0 ~timestamp:1L ~result:"v";
  reply w ~replica:1 ~timestamp:1L ~result:"v";
  Client.invoke w.client ~operation:"next" (fun r -> result := Some r);
  reply w ~replica:0 ~timestamp:2L ~result:"w";
  reply w ~replica:1 ~timestamp:2L ~result:"w";
  Alcotest.(check (option string)) "timestamps stay monotonic" (Some "w") !result

(* Regression (D3 class): when two result values both reach their quorum,
   the winner must not depend on hash order.  [quorum_winner] is pinned to
   the lexicographically smallest qualifying result, whatever the insertion
   order of the reply table. *)
let test_quorum_winner_deterministic () =
  let winner_of bindings ~needed =
    let replies = Hashtbl.create 8 in
    List.iter (fun (r, v) -> Hashtbl.replace replies r v) bindings;
    Client.quorum_winner ~needed replies
  in
  Alcotest.(check (option string))
    "two qualifying results: smallest wins" (Some "aa")
    (winner_of [ (0, "zz"); (1, "zz"); (2, "aa"); (3, "aa") ] ~needed:2);
  Alcotest.(check (option string))
    "insertion order irrelevant" (Some "aa")
    (winner_of [ (2, "aa"); (0, "zz"); (3, "aa"); (1, "zz") ] ~needed:2);
  Alcotest.(check (option string))
    "many qualifying results: smallest wins" (Some "r-a")
    (winner_of
       [ (0, "r-f"); (1, "r-e"); (2, "r-a"); (3, "r-c"); (4, "r-b"); (5, "r-d") ]
       ~needed:1);
  Alcotest.(check (option string))
    "no quorum" None
    (winner_of [ (0, "x"); (1, "y") ] ~needed:2)

let test_latency_histogram_streams () =
  let w = make_world () in
  for i = 0 to 2 do
    w.now <- Int64.add w.now 1_000L;
    Client.invoke w.client ~operation:"op" (fun _ -> ());
    w.now <- Int64.add w.now 500L;
    reply w ~replica:0 ~timestamp:(Int64.of_int i) ~result:"r";
    reply w ~replica:1 ~timestamp:(Int64.of_int i) ~result:"r"
  done;
  let s = Client.stats w.client in
  Alcotest.(check int) "three completions observed" 3
    (Base_obs.Metrics.hist_count s.Client.latency_us);
  Alcotest.(check int) "counter matches" 3 s.Client.completed

let suite =
  [
    Alcotest.test_case "request broadcast" `Quick test_request_broadcast;
    Alcotest.test_case "rw quorum is f+1" `Quick test_rw_quorum_f_plus_1;
    Alcotest.test_case "byzantine reply outvoted" `Quick test_byzantine_reply_outvoted;
    Alcotest.test_case "duplicates not double-counted" `Quick
      test_duplicate_replies_not_double_counted;
    Alcotest.test_case "stale timestamps ignored" `Quick test_stale_timestamp_ignored;
    Alcotest.test_case "read-only needs 2f+1" `Quick test_ro_needs_2f_plus_1;
    Alcotest.test_case "read-only fallback" `Quick test_ro_fallback_after_retries;
    Alcotest.test_case "outstanding ops queue" `Quick test_queueing_outstanding_ops;
    Alcotest.test_case "forged replies rejected" `Quick test_forged_reply_rejected;
    Alcotest.test_case "ro fallback ignores stale tentative replies" `Quick
      test_ro_fallback_ignores_stale_tentative;
    Alcotest.test_case "ro fallback bumps timestamp" `Quick
      test_ro_fallback_uses_fresh_timestamp;
    Alcotest.test_case "quorum winner deterministic" `Quick test_quorum_winner_deterministic;
    Alcotest.test_case "latency histogram streams" `Quick test_latency_histogram_streams;
  ]
