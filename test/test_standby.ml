(* Warm-standby pool and migration-based recovery: shadow sync correctness,
   promotion digest equality, poisoning resistance, freshest-standby
   selection, promotion-race fallback, and chaos with the standby fault
   verbs. *)

open Helpers
module Runtime = Base_core.Runtime
module Objrepo = Base_core.Objrepo
module Replica = Base_bft.Replica
module Types = Base_bft.Types
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
module Metrics = Base_obs.Metrics

let settle sys seconds =
  Engine.run ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_sec seconds))
    (Runtime.engine sys)

let drive_load sys ~ops ~gap_ms =
  for i = 0 to ops - 1 do
    ignore (set sys ~client:0 (i mod 8) (Printf.sprintf "load%d" i));
    Engine.advance_to (Runtime.engine sys)
      (Sim_time.add (Runtime.now sys) (Sim_time.of_ms gap_ms))
  done

let converged sys =
  let rs =
    Array.map (fun node -> Objrepo.current_root node.Runtime.repo) (Runtime.replicas sys)
  in
  Array.for_all (fun r -> Base_crypto.Digest_t.equal r rs.(0)) rs

let sync_state node =
  match node.Runtime.standby with
  | Some ss -> ss
  | None -> Alcotest.fail "node is not a standby"

let counter_value sys name = Metrics.counter_value (Metrics.counter (Runtime.metrics sys) name)

let test_shadow_sync_tracks_watermark () =
  (* The standby chases the stable checkpoint without ever joining the
     protocol: it syncs past several checkpoint boundaries, accumulates
     shadow bytes, executes nothing and votes in nothing. *)
  let sys, _ = make_system ~seed:61L ~checkpoint_period:8 ~standbys:1 () in
  drive_load sys ~ops:30 ~gap_ms:120;
  settle sys 1.0;
  let sb = Runtime.standby sys 4 in
  let ss = sync_state sb in
  Alcotest.(check bool)
    (Printf.sprintf "standby synced well past the first checkpoint (seq %d)" ss.Runtime.ss_synced_seq)
    true
    (ss.Runtime.ss_synced_seq >= 16);
  Alcotest.(check bool) "shadow bytes accounted" true (counter_value sys "base.standby.shadow_bytes" > 0);
  let stats = Replica.stats sb.Runtime.replica in
  Alcotest.(check int) "standby executed nothing" 0 stats.Replica.executed;
  Alcotest.(check int) "standby never promoted" 0 ss.Runtime.ss_promotions;
  (* The synced root is byte-equal to the group's digest at that
     checkpoint: fetch_target on the standby certifies what f+1 active
     replicas vouched for, and the shadow sync verified every piece of it. *)
  Alcotest.(check bool) "group still live and converged" true (converged sys)

let test_promotion_digest_equality () =
  (* Promote into slot 1 while the system is quiescent: the promoted
     machine's abstract state must be byte-identical to the live replicas'
     at the promotion point, with no catch-up fetch needed. *)
  let sys, kvs = make_system ~seed:62L ~checkpoint_period:8 ~standbys:1 () in
  drive_load sys ~ops:20 ~gap_ms:50;
  settle sys 1.0;
  let pool = Runtime.standby sys 4 in
  let synced_seq = (sync_state pool).Runtime.ss_synced_seq in
  Alcotest.(check bool) "standby warm before promotion" true (synced_seq > 0);
  Runtime.promote_now sys 1;
  settle sys 2.0;
  Alcotest.(check int) "pool slot promoted once" 1 (sync_state pool).Runtime.ss_promotions;
  Alcotest.(check bool) "promoted state digest-equal to live replicas" true (converged sys);
  (* The physical machine swap happened: slot 1 now executes on the kv that
     was built for node id 4, and the demoted machine was wiped. *)
  ignore (set sys ~client:0 3 "after-promotion");
  settle sys 1.0;
  Alcotest.(check string) "writes land on the promoted machine" "after-promotion"
    kvs.(4).slots.(3);
  Alcotest.(check bool) "demoted machine was restarted for wiping" true (kvs.(1).restarts >= 1);
  (* Episode accounting: a migrated timeline with a handoff far below the
     full window, and total durations (no raw sentinels). *)
  let tl =
    match List.rev (Runtime.recovery_timelines sys) with
    | tl :: _ -> tl
    | [] -> Alcotest.fail "no recovery episode recorded"
  in
  Alcotest.(check bool) "episode is a migration" true tl.Runtime.tl_migrated;
  (match (Runtime.timeline_handoff_us tl, Runtime.timeline_window_us tl) with
  | Some handoff, Some window ->
    Alcotest.(check bool)
      (Printf.sprintf "handoff (%dus) <= window (%dus)" handoff window)
      true (handoff <= window);
    Alcotest.(check bool) "staleness recorded" true (tl.Runtime.tl_staleness_seqs >= 0)
  | _ -> Alcotest.fail "migration episode did not complete")

let test_byzantine_source_cannot_poison_shadow_sync () =
  (* Corrupt replica 0's objects behind the wrapper AND recompute its
     digests, so it serves self-consistent garbage for the certified
     checkpoint (the corruption bypasses the copy-on-write upcall, exactly
     like a faulty implementation).  A standby that was down the whole time
     must then cold-sync the full state, striping fetches over all four
     sources: every piece is verified against the f+1-certified digest, so
     replica 0's pieces are rejected and refetched from honest sources. *)
  let sys, kvs = make_system ~seed:63L ~checkpoint_period:8 ~standbys:1 () in
  let plan text =
    match Base_sim.Faultplan.parse text with Ok p -> p | Error e -> Alcotest.fail e
  in
  Runtime.apply_faultplan sys (plan "at 1us crash-standby 4\n");
  drive_load sys ~ops:16 ~gap_ms:50;
  settle sys 0.5;
  (* Checkpoint 16 is certified by the honest majority; no further sequence
     numbers are assigned below, so replica 0 never crosses another
     checkpoint boundary and never notices (or repairs) its own divergence:
     the poison stays live in what it serves. *)
  for i = 1 to 7 do
    kvs.(0).slots.(i) <- Printf.sprintf "POISON%d" i
  done;
  Objrepo.rebuild_all_digests (Runtime.replica sys 0).Runtime.repo;
  Runtime.apply_faultplan sys (plan "at 1us reboot 4\n");
  settle sys 2.0;
  let ss = sync_state (Runtime.standby sys 4) in
  Alcotest.(check bool)
    (Printf.sprintf "cold standby synced despite the poisoner (seq %d)" ss.Runtime.ss_synced_seq)
    true
    (ss.Runtime.ss_synced_seq >= 16);
  let st = Runtime.st_totals sys in
  Alcotest.(check bool)
    (Printf.sprintf "poisoned pieces were rejected (%d)" (Base_core.State_transfer.rejected st))
    true
    (Base_core.State_transfer.rejected st > 0);
  (* Promote and verify the synced state matches the honest majority, not
     the poisoner. *)
  Runtime.promote_now sys 1;
  settle sys 2.0;
  Alcotest.(check string) "promoted machine holds the honest value" "load15"
    kvs.(4).slots.(7);
  Alcotest.(check string) "promoted machine never saw the poison" "load14"
    kvs.(4).slots.(6)

let test_stale_standby_skipped_for_fresher () =
  (* Two standbys; one goes dark while the watermark advances, so its
     shadow state is stale.  promote_now must pick the fresher one. *)
  let sys, _ = make_system ~seed:64L ~checkpoint_period:8 ~standbys:2 () in
  drive_load sys ~ops:12 ~gap_ms:120;
  settle sys 0.5;
  let a = Runtime.standby sys 4 and b = Runtime.standby sys 5 in
  Alcotest.(check bool) "both standbys warm" true
    ((sync_state a).Runtime.ss_synced_seq > 0 && (sync_state b).Runtime.ss_synced_seq > 0);
  Engine.set_node_up (Runtime.engine sys) 4 false;
  drive_load sys ~ops:16 ~gap_ms:120;
  Engine.set_node_up (Runtime.engine sys) 4 true;
  Alcotest.(check bool) "standby 4 now stale" true
    ((sync_state a).Runtime.ss_synced_seq < (sync_state b).Runtime.ss_synced_seq);
  Runtime.promote_now sys 2;
  settle sys 2.0;
  Alcotest.(check int) "fresher standby promoted" 1 (sync_state b).Runtime.ss_promotions;
  Alcotest.(check int) "stale standby skipped" 0 (sync_state a).Runtime.ss_promotions;
  Alcotest.(check bool) "group converged after migration" true (converged sys)

let test_promotion_race_falls_back_in_place () =
  (* The chosen standby crashes mid-handshake: the promotion aborts and the
     slot still recovers, in place. *)
  let sys, _ = make_system ~seed:65L ~checkpoint_period:8 ~standbys:1 () in
  drive_load sys ~ops:12 ~gap_ms:60;
  settle sys 0.5;
  Runtime.promote_now sys 1;
  (* The handshake is pending (promote_us of virtual time); kill the
     standby before it completes. *)
  Engine.set_node_up (Runtime.engine sys) 4 false;
  settle sys 3.0;
  drive_load sys ~ops:4 ~gap_ms:60;
  settle sys 2.0;
  Alcotest.(check bool) "promotion aborted" true
    (counter_value sys "base.standby.promotions_aborted" >= 1);
  Alcotest.(check int) "no promotion completed" 0
    (sync_state (Runtime.standby sys 4)).Runtime.ss_promotions;
  let tl =
    match
      List.find_opt (fun tl -> tl.Runtime.tl_rid = 1) (Runtime.recovery_timelines sys)
    with
    | Some tl -> tl
    | None -> Alcotest.fail "no episode for slot 1"
  in
  Alcotest.(check bool) "episode records the attempted migration" true tl.Runtime.tl_migrated;
  Alcotest.(check bool) "no handoff milestone (degraded to in-place reboot)" true
    (Runtime.timeline_handoff_us tl = None);
  Alcotest.(check bool) "slot recovered anyway" true
    (Runtime.timeline_window_us tl <> None);
  Alcotest.(check bool) "group converged" true (converged sys)

let test_faultplan_standby_chaos () =
  (* The standby fault verbs drive a crash / reboot / promotion-race script
     through the plan executor without hurting liveness. *)
  let sys, _ = make_system ~seed:66L ~checkpoint_period:8 ~standbys:2 () in
  drive_load sys ~ops:10 ~gap_ms:60;
  settle sys 0.5;
  let plan =
    match
      Base_sim.Faultplan.parse
        "at 100ms crash-standby 4\n\
         at 300ms promote 4   # standby 4 is down: degrades to in-place\n\
         at 500ms reboot 4\n\
         at 900ms promote 5\n"
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Runtime.apply_faultplan sys plan;
  drive_load sys ~ops:25 ~gap_ms:120;
  settle sys 4.0;
  (* promote 4 fired while standby 4 was down, so that roll degraded to an
     in-place recovery of slot 0; promote 5 promoted the warm standby into
     slot 1 (the roll cursor advanced). *)
  Alcotest.(check int) "standby 5 promoted" 1
    (sync_state (Runtime.standby sys 5)).Runtime.ss_promotions;
  Alcotest.(check bool) "two episodes recorded" true
    (List.length (Runtime.recovery_timelines sys) >= 2);
  Alcotest.(check bool) "system alive" true (String.equal (set sys ~client:0 0 "alive") "ok");
  settle sys 1.0;
  Alcotest.(check bool) "states converged" true (converged sys)

let test_rolling_migration_under_watchdog () =
  (* The migrating watchdog rolls every slot through promotion; the demoted
     machines re-enter the pool, re-sync, and serve later rolls.  While the
     pool is still cold (before the first certified checkpoint) the watchdog
     must skip rounds rather than degrade to in-place reboots. *)
  let sys, _ = make_system ~seed:67L ~checkpoint_period:8 ~standbys:2 () in
  Runtime.enable_proactive_recovery ~migrate:true ~reboot_us:200_000 ~promote_us:10_000
    ~period_us:1_000_000 sys;
  drive_load sys ~ops:40 ~gap_ms:120;
  Runtime.disable_proactive_recovery sys;
  settle sys 3.0;
  let migrations =
    List.length
      (List.filter
         (fun tl -> tl.Runtime.tl_migrated && Runtime.timeline_handoff_us tl <> None)
         (Runtime.recovery_timelines sys))
  in
  Alcotest.(check bool)
    (Printf.sprintf "several migration episodes completed (%d)" migrations)
    true (migrations >= 4);
  Alcotest.(check bool) "cold-pool rounds were skipped, not degraded" true
    (counter_value sys "base.standby.rounds_skipped" >= 1);
  Alcotest.(check bool) "system alive after rolling migration" true
    (String.equal (set sys ~client:0 0 "alive") "ok");
  settle sys 1.0;
  Alcotest.(check bool) "states converged" true (converged sys)

let suite =
  [
    Alcotest.test_case "shadow sync tracks the watermark" `Quick
      test_shadow_sync_tracks_watermark;
    Alcotest.test_case "promotion is digest-exact" `Quick test_promotion_digest_equality;
    Alcotest.test_case "byzantine source cannot poison shadow sync" `Quick
      test_byzantine_source_cannot_poison_shadow_sync;
    Alcotest.test_case "stale standby skipped for fresher" `Quick
      test_stale_standby_skipped_for_fresher;
    Alcotest.test_case "promotion race falls back in place" `Quick
      test_promotion_race_falls_back_in_place;
    Alcotest.test_case "faultplan standby chaos" `Quick test_faultplan_standby_chaos;
    Alcotest.test_case "rolling migration under watchdog" `Quick
      test_rolling_migration_under_watchdog;
  ]
