(* Taint-backend fixture: the same B1 shapes as b1_bad.ml with a
   dominating sanitizer each — must produce zero findings. *)

module Xdr = struct
  let read_u32 (_d : string) = 0
end

let max_len = 4096

(* Two-sided comparison guard: the else-branch of [n < 0 || n > cap]
   discharges both taint directions. *)
let alloc d =
  let n = Xdr.read_u32 d in
  if n < 0 || n > max_len then None else Some (Bytes.create n)

(* Masking with a clean operand bounds both directions. *)
let alloc2 d = Bytes.create (Xdr.read_u32 d land 0xff)

(* A measured length of materialized data is clean. *)
let copy buf = String.sub buf 0 (String.length buf)

(* [min] against a clean cap discharges the upper bound, which is the
   direction an ascending loop's upper limit needs. *)
let burn d =
  for i = 1 to min (Xdr.read_u32 d) 16 do
    ignore i
  done
