(* Typed-backend fixture: the sort lives in a helper defined in a
   *different* structure item (and its name deliberately avoids "sort").
   The syntactic D3 rule only accepts a sort in the same item, so it flags
   the fold below; the typed backend resolves [canonicalize]'s identity
   across items and accepts it. *)

let canonicalize pairs = List.sort (fun (a, _) (b, _) -> Int.compare a b) pairs

let bindings tbl = canonicalize (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
