(* Fixture: abort-on-bad-input in a Byzantine-facing path trips E1. *)
let decode = function
  | 0 -> ()
  | 1 -> invalid_arg "bad tag"
  | _ -> failwith "unreachable"

let check b = if not b then assert false
