(* Cross-module interprocedural fixture: the wire length flows through
   [Taint_helper.launder] — a different compilation unit — before the
   allocation.  Only a joint fixpoint over both units' summaries can
   connect the source to the sink. *)

module Xdr = struct
  let read_u32 (_d : string) = 0
end

(* B1: tainted despite the cross-module detour. *)
let alloc d = Bytes.create (Taint_helper.launder (Xdr.read_u32 d))
