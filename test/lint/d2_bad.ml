(* Fixture: every line here trips D2 (ambient time / randomness). *)
let now () = Unix.gettimeofday ()
let roll () = Random.int 10
let cpu () = Sys.time ()
