(* Taint-backend fixture: every B3 sink family the pass must flag —
   a registered setfield (protocol watermark), a record-field call with a
   labeled argument (timer duration), and a registered function sink
   (partition-tree coordinate). *)

module Xdr = struct
  let read_u32 (_d : string) = 0
end

module Partition_tree = struct
  let children (_t : unit) ~level:(_ : int) ~index:(_ : int) = [||]
end

type t = { mutable view : int }

type net = { set_timer : after_us:int -> tag:string -> int }

(* B3: wire value assigned to a protocol watermark field. *)
let adopt t d = t.view <- Xdr.read_u32 d

(* B3: wire duration into a timer through a record-field call. *)
let arm net d = net.set_timer ~after_us:(Xdr.read_u32 d) ~tag:"t"

(* B3: wire partition-tree coordinate. *)
let fetch pt d = Partition_tree.children pt ~level:(Xdr.read_u32 d) ~index:0
