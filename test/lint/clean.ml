(* Fixture: determinism-safe idioms that basecheck must NOT flag. *)
let compare_pair (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> String.compare b1 b2 | c -> c

(* Hash-order fold is fine when the same item sorts before emitting. *)
let rows tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare_pair

let clamp lo hi v = min hi (max lo v)
let is_unset o = o = None
