(* Fixture: hash-order iteration with no sort in the same item trips D3. *)
let dump tbl = Hashtbl.iter (fun k v -> print_string (k ^ v)) tbl
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
