(* Fixture: every line here trips D4 (process escape hatches in lib code). *)
let save x = Marshal.to_string x []
let cast x = Obj.magic x
let die () = exit 1
