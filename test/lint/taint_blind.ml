(* Documented blind spots of the taint backend, one function each, pinned
   by a test asserting this unit produces ZERO findings.  Every shape here
   is genuinely dangerous at runtime; the fixture exists so a future pass
   improvement that closes one shows up as a test diff (flip the
   expectation), and so doc/lint.md's blind-spot table stays honest.

   See doc/lint.md, "What the taint pass does not see". *)

module Xdr = struct
  let read_u32 (_d : string) = 0
end

module Message = struct
  let verify (_env : string) = true
end

type t = { mutable view : int }

(* 1. Heap laundering: a wire value round-tripped through a hash table
   comes back clean, because container reads are treated as locally
   produced. *)
let stash : (int, int) Hashtbl.t = Hashtbl.create 8

let heap_launder d =
  Hashtbl.replace stash 0 (Xdr.read_u32 d);
  match Hashtbl.find_opt stash 0 with
  | Some n -> Bytes.create n
  | None -> Bytes.empty

(* 2. Implicit flow: the attacker steers the branch, but only data
   dependencies are tracked, so the branch result is clean. *)
let implicit d = Bytes.create (if Xdr.read_u32 d > 0 then 1024 else 0)

(* 3. Recursion depth: only for/while bounds are B1 loop sinks; a
   wire-controlled recursion count is not seen. *)
let rec spin n = if n > 0 then spin (n - 1)

let recurse d = spin (Xdr.read_u32 d)

(* 4. Trusted-parameter bounds: a comparison against an ordinary
   (unregistered) parameter sanitizes, even though some caller could
   itself pass a wire value for [cap].  Registered source params carry
   wire bits and never sanitize; everything else is trusted. *)
let clamp cap d =
  let n = Xdr.read_u32 d in
  if n < 0 || n > cap then Bytes.empty else Bytes.create n

(* 5. Deferred callbacks: lambda bodies are excluded from the B2 event
   order (they run later, not here), so a mutation smuggled into a
   closure escapes verify-before-mutate ordering. *)
let defer f = f ()

let deferred_mutate t env =
  defer (fun () -> t.view <- 0);
  ignore (Message.verify env)
