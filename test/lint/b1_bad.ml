(* Taint-backend fixture: every B1 shape the pass must flag.  The local
   [Xdr] fake matches the registry's [(source (module Xdr) (prefix
   read_))] entry by innermost module name, so its call results are
   wire-tainted exactly like the real decoder's. *)

module Xdr = struct
  let read_u32 (_d : string) = 0
end

(* B1: wire length straight into an allocation. *)
let alloc d = Bytes.create (Xdr.read_u32 d)

(* B1: wire offset into a byte range. *)
let slice buf d = String.sub buf (Xdr.read_u32 d) 8

(* B1: wire count as an ascending for-loop bound. *)
let burn d =
  for i = 1 to Xdr.read_u32 d do
    ignore i
  done

(* B1 through a local helper: the conditional sink recorded on [pad]'s
   parameter is instantiated by [alloc2]'s wire argument, so the finding
   lands on the allocation inside [pad]. *)
let pad n = Bytes.make n ' '

let alloc2 d = pad (Xdr.read_u32 d)
