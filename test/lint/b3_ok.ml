(* Taint-backend fixture: the b3_bad.ml sinks with validation in front —
   zero findings. *)

module Xdr = struct
  let read_u32 (_d : string) = 0
end

module Partition_tree = struct
  let levels (_t : unit) = 4

  let children (_t : unit) ~level:(_ : int) ~index:(_ : int) = [||]
end

type t = { mutable view : int }

type net = { set_timer : after_us:int -> tag:string -> int }

(* Watermark adoption behind a two-sided window check. *)
let adopt t d =
  let v = Xdr.read_u32 d in
  if v >= 0 && v < 1000 then t.view <- v

(* Timer durations come from configuration, never the wire. *)
let arm net _d = net.set_timer ~after_us:5000 ~tag:"t"

(* Coordinate clamped against the (clean, registry-listed) tree shape. *)
let fetch pt d =
  let level = Xdr.read_u32 d in
  if level >= 0 && level < Partition_tree.levels pt then
    ignore (Partition_tree.children pt ~level ~index:0)
