(* Cross-module half of the interprocedural fixture: a separate
   compilation unit whose summary must carry the result's dependency on
   the parameter over to callers in other units (see b1_cross_bad.ml).
   Itself clean: no sources, no sinks. *)

let launder x = x + 0
