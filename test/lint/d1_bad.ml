(* Fixture: every line here trips D1 (polymorphic comparison). *)
let sorted xs = List.sort compare xs
let h x = Hashtbl.hash x
let eq a = a = (1, 2)
let smaller = min
