(* Taint-backend fixture: mutations correctly dominated by verification,
   plus a mutate-only function (no verification anywhere, so not a
   MAC-carrying handler path) — zero findings. *)

module Message = struct
  let verify (_env : string) = true
end

type t = { mutable view : int; mutable ticks : int }

(* Mutation only in the verified branch. *)
let handle t env v = if Message.verify env then t.view <- v

(* Verification sequenced strictly before the mutation. *)
let handle2 t env v =
  let ok = Message.verify env in
  if ok then begin
    t.view <- v;
    t.ticks <- t.ticks + 1
  end

(* No verifier on any path: a local bookkeeping function, not a handler. *)
let tick t = t.ticks <- t.ticks + 1
