(* Taint-backend fixture: B2 (verify-before-mutate).  The local [Message]
   fake matches the registry's [(verifier (module Message) (name
   verify))], so calling it marks the path verified; any state mutation
   sequenced before it on the same path is a finding. *)

module Message = struct
  let verify (_env : string) = true
end

type t = { mutable view : int; mutable log : int list }

(* B2: the watermark is assigned before the MAC check on this path. *)
let handle t env v =
  t.view <- v;
  if Message.verify env then () else ()

(* B2: mutation via a stdlib primitive before the check. *)
let enqueue t env v =
  t.log <- v :: t.log;
  ignore (Message.verify env)
