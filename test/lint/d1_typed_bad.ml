(* Typed-backend fixture: structural comparison on *variables* of
   structured type.  Every operand here is a bare identifier, so the
   syntactic D1 rule sees nothing; the typed backend flags each site from
   the instantiation type.  Compiled to a .cmt by the lint_typed_fixtures
   library (unlike the d*_bad.ml fixtures, which are only parsed). *)

type entry = { key : int; value : string }

(* D1-typed: (=) at a record type. *)
let same_entry (a : entry) (b : entry) = a = b

(* D1-typed: (<>) at a list type. *)
let differ (xs : string list) (ys : string list) = xs <> ys

(* D1-typed: polymorphic max at a record type. *)
let newest (a : entry) (b : entry) = max a b
