(* The view-change path under fire: crash, equivocation, and fault-plan
   driven storms must all install a new view, keep completing requests, and
   leave their latency trail in [bft.view_change_us]. *)

module Runtime = Base_core.Runtime
module Replica = Base_bft.Replica
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
module Faultplan = Base_sim.Faultplan
module Metrics = Base_obs.Metrics

let plan_exn text =
  match Faultplan.parse text with Ok p -> p | Error e -> Alcotest.fail e

let vc_samples sys =
  Metrics.hist_count (Metrics.histogram (Runtime.metrics sys) "bft.view_change_us")

let counter sys name = Metrics.counter_value (Metrics.counter (Runtime.metrics sys) name)

(* Crash the primary mid-load: the f survivors change views, requests keep
   completing, and the view-change histogram gains samples. *)
let test_primary_crash () =
  let sys, _ =
    Helpers.make_system ~seed:31L ~client_timeout_us:50_000 ~viewchange_timeout_us:100_000 ()
  in
  Alcotest.(check string) "healthy write" "ok" (Helpers.set sys ~client:0 1 "before");
  Alcotest.(check int) "no view change yet" 0 (vc_samples sys);
  Runtime.apply_faultplan sys (plan_exn "at 1ms crash 0");
  (* Let the crash fire before probing: a write issued immediately would
     complete under the still-healthy primary. *)
  Engine.run ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_ms 20)) (Runtime.engine sys);
  Alcotest.(check string) "write survives the crash" "ok" (Helpers.set sys ~client:0 2 "after");
  Alcotest.(check string) "read-back" "after" (Helpers.value_part (Helpers.get sys ~client:0 2));
  Array.iter
    (fun node ->
      if node.Runtime.rid <> 0 then begin
        Alcotest.(check bool)
          (Printf.sprintf "replica %d left view 0" node.Runtime.rid)
          true
          (Replica.view node.Runtime.replica > 0);
        Alcotest.(check bool)
          (Printf.sprintf "replica %d counted a view change" node.Runtime.rid)
          true
          ((Replica.stats node.Runtime.replica).Replica.view_changes > 0)
      end)
    (Runtime.replicas sys);
  Alcotest.(check bool) "bft.view_change_us is non-empty" true (vc_samples sys > 0)

(* An equivocating primary cannot commit conflicting orderings; the backups
   detect the conflicting digests and move to a view with an honest leader. *)
let test_equivocating_primary () =
  let sys, _ =
    Helpers.make_system ~seed:32L ~client_timeout_us:50_000 ~viewchange_timeout_us:100_000 ()
  in
  Runtime.apply_faultplan sys (plan_exn "at 0us behavior 0 equivocate");
  Alcotest.(check string) "write completes despite equivocation" "ok"
    (Helpers.set sys ~client:0 3 "honest-quorum");
  Alcotest.(check string) "read-back" "honest-quorum"
    (Helpers.value_part (Helpers.get sys ~client:0 3));
  Alcotest.(check bool) "equivocation detected" true
    (counter sys "bft.equivocation_detected" > 0);
  Alcotest.(check bool) "view changed away from the equivocator" true (vc_samples sys > 0)

(* A full mini-storm from the DSL: omission attack on the primary, then a
   primary crash/reboot cycle, then a short partition.  Liveness must hold
   at every probe and the crashed replica must rejoin. *)
let test_faultplan_storm () =
  let sys, _ =
    Helpers.make_system ~seed:33L ~client_timeout_us:50_000 ~viewchange_timeout_us:100_000 ()
  in
  let plan =
    plan_exn
      "# storm: one faulty replica at a time\n\
       at 10ms attack-preprepare 0 mute=0.8 delay=2ms for 300ms\n\
       at 400ms crash 0\n\
       at 700ms reboot 0\n\
       at 900ms partition 2 / 0 1 3\n\
       at 1200ms heal\n"
  in
  Runtime.apply_faultplan sys plan;
  let t0 = Sim_time.to_sec (Runtime.now sys) in
  let i = ref 0 in
  while Sim_time.to_sec (Runtime.now sys) < t0 +. 1.5 do
    incr i;
    match
      Runtime.try_invoke_sync sys ~client:0
        ~operation:(Printf.sprintf "set:%d:storm%d" (!i mod 8) !i)
        ()
    with
    | Ok r -> Alcotest.(check string) "storm write" "ok" r
    | Error e -> Alcotest.fail ("liveness lost during storm: " ^ e)
  done;
  Alcotest.(check bool) "issued writes throughout" true (!i > 10);
  Alcotest.(check bool) "view changes happened" true (vc_samples sys > 0);
  Alcotest.(check bool) "adversary muted pre-prepares" true (counter sys "adversary.pp_muted" > 0);
  (* Settle, then check the whole group reconverged on one view and state. *)
  (match Runtime.try_run_until_idle sys with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Engine.run ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_sec 1.0)) (Runtime.engine sys);
  Alcotest.(check string) "post-storm write" "ok" (Helpers.set sys ~client:0 0 "final");
  Alcotest.(check string) "post-storm read" "final"
    (Helpers.value_part (Helpers.get_ro sys ~client:0 0))

(* Corrupted-in-flight protocol messages must be rejected at the wire codec
   and never break agreement. *)
let test_corruption_window () =
  let sys, _ =
    Helpers.make_system ~seed:34L ~client_timeout_us:50_000 ~viewchange_timeout_us:100_000 ()
  in
  Runtime.apply_faultplan sys (plan_exn "at 1ms corrupt *->* p=0.3 for 400ms");
  for i = 1 to 20 do
    Alcotest.(check string) "write under corruption" "ok"
      (Helpers.set sys ~client:0 (i mod 8) (Printf.sprintf "v%d" i))
  done;
  Alcotest.(check bool) "messages were corrupted" true (counter sys "engine.corrupted_msgs" > 0);
  let rejects =
    Array.fold_left
      (fun acc node -> acc + (Replica.stats node.Runtime.replica).Replica.rejected_decode)
      0 (Runtime.replicas sys)
  in
  Alcotest.(check bool) "replicas rejected corrupted wire bytes" true (rejects > 0)

(* Rebuild the runtime's keychains (deterministic from the engine seed) so
   a test adversary can seal protocol messages with *valid* MACs: the
   attack below is well-formed and authenticated, only its claims are
   implausible. *)
let chains_for ~seed sys =
  Base_crypto.Auth.create
    ~seed:(Int64.add seed 7919L)
    ~n_principals:(Runtime.config sys).Base_bft.Types.n_principals

let settle sys ms =
  Engine.run ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_ms ms)) (Runtime.engine sys)

module Message = Base_bft.Message
module Digest = Base_crypto.Digest_t

(* A VIEW-CHANGE passing the MAC check but claiming a prepared proof far
   outside the log window above its own claimed checkpoint: counted as
   insane and dropped before it can widen the view-change window
   (regression for the taint pass's B3 findings on view adoption). *)
let test_insane_view_change_rejected () =
  let seed = 41L in
  let sys, _ =
    Helpers.make_system ~seed ~client_timeout_us:50_000 ~viewchange_timeout_us:100_000 ()
  in
  Alcotest.(check string) "healthy write" "ok" (Helpers.set sys ~client:0 1 "base");
  let chains = chains_for ~seed sys in
  let config = Runtime.config sys in
  let r1 = (Runtime.replica sys 1).Runtime.replica in
  let before = (Replica.stats r1).Replica.rejected_insane in
  let insane_vc =
    Message.View_change
      {
        new_view = 1;
        last_stable = 0;
        stable_digest = Digest.of_string "x";
        prepared =
          [
            {
              Message.pp_view = 0;
              pp_seq = 1_000_000;
              pp_digest = Digest.of_string "y";
              pp_requests = [];
              pp_nondet = "";
            };
          ];
        replica = 2;
      }
  in
  let env = Message.seal chains.(2) ~sender:2 ~n_receivers:config.Base_bft.Types.n insane_vc in
  Engine.send (Runtime.engine sys) ~src:2 ~dst:1 (Runtime.Bft env);
  settle sys 50;
  Alcotest.(check int) "insane VC counted" (before + 1) (Replica.stats r1).Replica.rejected_insane;
  Alcotest.(check int) "MAC was fine" 0 (Replica.stats r1).Replica.rejected_macs;
  Alcotest.(check int) "view did not move" 0 (Replica.view r1);
  Alcotest.(check bool) "metrics counter agrees" true (counter sys "bft.reject.insane" > 0);
  Alcotest.(check string) "system still live" "ok" (Helpers.set sys ~client:0 2 "after")

(* A NEW-VIEW from the legitimate next primary whose bundled pre-prepares
   would teleport the log window to an attacker-chosen seqno: the shape
   check rejects it before [next_seq] is adopted. *)
let test_insane_new_view_rejected () =
  let seed = 42L in
  let sys, _ =
    Helpers.make_system ~seed ~client_timeout_us:50_000 ~viewchange_timeout_us:100_000 ()
  in
  Alcotest.(check string) "healthy write" "ok" (Helpers.set sys ~client:0 1 "base");
  let chains = chains_for ~seed sys in
  let config = Runtime.config sys in
  let p1 = Base_bft.Types.primary config 1 in
  let dst = (p1 + 1) mod config.Base_bft.Types.n in
  let rd = (Runtime.replica sys dst).Runtime.replica in
  let before = (Replica.stats rd).Replica.rejected_insane in
  let insane_nv =
    Message.New_view
      {
        nv_view = 1;
        nv_view_changes = [ (0, 0); (2, 0); (3, 0) ];
        nv_pre_prepares =
          [
            {
              Message.view = 1;
              seq = 5_000_000;
              digest = Digest.of_string "z";
              requests = [];
              nondet = "";
            };
          ];
      }
  in
  let env =
    Message.seal chains.(p1) ~sender:p1 ~n_receivers:config.Base_bft.Types.n insane_nv
  in
  Engine.send (Runtime.engine sys) ~src:p1 ~dst (Runtime.Bft env);
  settle sys 50;
  Alcotest.(check int) "insane NV counted" (before + 1)
    (Replica.stats rd).Replica.rejected_insane;
  Alcotest.(check bool) "next_seq not teleported" true (Replica.last_executed rd < 1_000);
  settle sys 500;
  Alcotest.(check string) "system still live" "ok" (Helpers.set sys ~client:0 2 "after")

let suite =
  [
    Alcotest.test_case "primary crash installs a new view" `Quick test_primary_crash;
    Alcotest.test_case "insane view-change is counted and dropped" `Quick
      test_insane_view_change_rejected;
    Alcotest.test_case "insane new-view is counted and rejected" `Quick
      test_insane_new_view_rejected;
    Alcotest.test_case "equivocating primary is detected and deposed" `Quick
      test_equivocating_primary;
    Alcotest.test_case "faultplan storm keeps liveness" `Slow test_faultplan_storm;
    Alcotest.test_case "corruption window is survived" `Quick test_corruption_window;
  ]
