(* Tests of request batching: correctness is untouched (exactly-once per
   request, convergent states) while concurrent load gets amortised into
   fewer consensus instances. *)

open Helpers
module Runtime = Base_core.Runtime
module Replica = Base_bft.Replica
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time

(* Closed-loop load: every client keeps one op outstanding for [duration]. *)
let closed_loop sys ~clients ~duration_s =
  let completed = ref 0 in
  let rec issue c i =
    Runtime.invoke sys ~client:c
      ~operation:(Printf.sprintf "set:%d:c%d-%d" (c mod 8) c i)
      (fun reply ->
        if reply <> "ok" then failwith "unexpected reply";
        incr completed;
        issue c (i + 1))
  in
  for c = 0 to clients - 1 do
    issue c 0
  done;
  Engine.run
    ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_sec duration_s))
    (Runtime.engine sys);
  !completed

let stats_of sys =
  Array.fold_left
    (fun (i, r) node ->
      let st = Replica.stats node.Runtime.replica in
      (max i st.Replica.executed, max r st.Replica.executed_requests))
    (0, 0) (Runtime.replicas sys)

let test_batches_form_under_load () =
  let sys, kvs =
    make_system ~seed:61L ~n_clients:8 ~checkpoint_period:64 ~batch_max:8 ~max_inflight:2 ()
  in
  let completed = closed_loop sys ~clients:8 ~duration_s:1.0 in
  let instances, requests = stats_of sys in
  Alcotest.(check bool) "work happened" true (completed > 50);
  Alcotest.(check bool)
    (Printf.sprintf "batching amortised instances (%d reqs in %d instances)" requests instances)
    true
    (requests > instances * 2);
  (* Quiesce in-flight traffic, then check convergence. *)
  Engine.run
    ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_sec 1.0))
    (Runtime.engine sys);
  let s0 = Array.copy kvs.(0).slots in
  Array.iter (fun kv -> Alcotest.(check bool) "replicas agree" true (kv.slots = s0)) kvs

let test_batching_not_lossy () =
  (* Every client op completes exactly once: final slot values reflect each
     client's LAST completed op. *)
  let sys, kvs =
    make_system ~seed:62L ~n_clients:4 ~checkpoint_period:32 ~batch_max:16 ~max_inflight:1 ()
  in
  let per_client = 25 in
  let done_count = ref 0 in
  for c = 0 to 3 do
    for i = 0 to per_client - 1 do
      Runtime.invoke sys ~client:c
        ~operation:(Printf.sprintf "set:%d:final%d-%d" c c i)
        (fun _ -> incr done_count)
    done
  done;
  let events = ref 0 in
  while !done_count < 4 * per_client && !events < 3_000_000 do
    if not (Engine.step (Runtime.engine sys)) then failwith "quiescent";
    incr events
  done;
  Alcotest.(check int) "all ops completed" (4 * per_client) !done_count;
  Engine.run
    ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_sec 1.0))
    (Runtime.engine sys);
  Array.iteri
    (fun r kv ->
      for c = 0 to 3 do
        Alcotest.(check string)
          (Printf.sprintf "replica %d slot %d" r c)
          (Printf.sprintf "final%d-%d" c (per_client - 1))
          kv.slots.(c)
      done)
    kvs

let test_batching_with_view_change () =
  let sys, _ =
    make_system ~seed:63L ~n_clients:4 ~checkpoint_period:32 ~batch_max:8 ~max_inflight:2 ()
  in
  ignore (closed_loop sys ~clients:4 ~duration_s:0.3);
  Runtime.set_behavior sys 0 Replica.Mute;
  let more = closed_loop sys ~clients:4 ~duration_s:1.5 in
  Alcotest.(check bool) "progress after primary failure under batched load" true (more > 20)

let test_unbatched_equivalence () =
  (* batch_max = 1 must behave exactly like the original protocol. *)
  let sys, _ = make_system ~seed:64L ~batch_max:1 ~max_inflight:1 () in
  Alcotest.(check string) "set" "ok" (set sys ~client:0 2 "plain");
  Alcotest.(check string) "get" "plain" (value_part (get sys ~client:0 2));
  let instances, requests = stats_of sys in
  Alcotest.(check int) "one request per instance" instances requests

(* Batching-equivalence property: batching is a scheduling optimisation, not
   a semantic change.  The same seeded workload run under batch_max = 1 and
   batch_max = 64 must produce identical per-client result histories and an
   identical abstract-state digest.  The workload runs on the stamp-free
   registers service (no agreed clock enters the state) with each client
   owning a disjoint slot range, so results and final state are functions of
   the workload alone — any divergence is a batching bug (loss, duplication,
   reordering within a client, or cross-request interference). *)
let equivalence_script ~n_clients ~per_client ~slots_per_client =
  let prng = Base_util.Prng.create 4242L in
  Array.init n_clients (fun c ->
      let base = c * slots_per_client in
      Array.init per_client (fun i ->
          let slot = base + Base_util.Prng.int prng slots_per_client in
          match Base_util.Prng.int prng 4 with
          | 0 -> (Printf.sprintf "get:%d" slot, false)
          | 1 -> (Printf.sprintf "get:%d" slot, true)  (* read-only fast path *)
          | _ -> (Printf.sprintf "set:%d:c%d-%d" slot c i, false)))

let run_equivalence_workload ~batch_max script ~n_clients ~slots_per_client =
  let sys =
    Base_workload.Systems.make_registers ~seed:65L ~n_clients ~batch_max
      ~n_objects:(n_clients * slots_per_client) ()
  in
  let rt = sys.Base_workload.Systems.reg_runtime in
  let histories = Array.map (fun ops -> Array.make (Array.length ops) "") script in
  Array.iteri
    (fun c ops ->
      Array.iteri
        (fun i (operation, read_only) ->
          Runtime.invoke rt ~client:c ~read_only ~operation (fun r ->
              histories.(c).(i) <- r))
        ops)
    script;
  Runtime.run_until_idle rt;
  (* Quiesce stragglers so every replica reaches the final state. *)
  Engine.run ~until:(Sim_time.add (Runtime.now rt) (Sim_time.of_sec 1.0)) (Runtime.engine rt);
  let root = Base_core.Objrepo.current_root (Runtime.replica rt 0).Runtime.repo in
  Array.iter
    (fun node ->
      Alcotest.(check bool) "replicas converged" true
        (Base_crypto.Digest_t.equal root
           (Base_core.Objrepo.current_root node.Runtime.repo)))
    (Runtime.replicas rt);
  (histories, root)

let test_batching_equivalence_property () =
  let n_clients = 4 and per_client = 24 and slots_per_client = 4 in
  let script = equivalence_script ~n_clients ~per_client ~slots_per_client in
  let h1, d1 = run_equivalence_workload ~batch_max:1 script ~n_clients ~slots_per_client in
  let h64, d64 = run_equivalence_workload ~batch_max:64 script ~n_clients ~slots_per_client in
  for c = 0 to n_clients - 1 do
    Alcotest.(check (array string))
      (Printf.sprintf "client %d history identical across batch sizes" c)
      h1.(c) h64.(c)
  done;
  Alcotest.(check bool) "abstract-state digests identical" true
    (Base_crypto.Digest_t.equal d1 d64)

let suite =
  [
    Alcotest.test_case "batches form under load" `Quick test_batches_form_under_load;
    Alcotest.test_case "batching is not lossy" `Quick test_batching_not_lossy;
    Alcotest.test_case "batching + view change" `Quick test_batching_with_view_change;
    Alcotest.test_case "unbatched equivalence" `Quick test_unbatched_equivalence;
    Alcotest.test_case "batching-equivalence property" `Quick
      test_batching_equivalence_property;
  ]
