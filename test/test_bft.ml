(* Protocol-level tests of the PBFT substrate: safety under loss and
   concurrency, view-change behaviour, equivocating primaries, partitions,
   and the message-authentication boundary. *)

open Helpers
module Runtime = Base_core.Runtime
module Replica = Base_bft.Replica
module Message = Base_bft.Message
module Types = Base_bft.Types
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time

let settle sys seconds =
  Engine.run ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_sec seconds))
    (Runtime.engine sys)

let all_states_equal kvs =
  let snapshot (kv : kv) = (Array.copy kv.slots, Array.copy kv.stamps) in
  let s0 = snapshot kvs.(0) in
  Array.for_all (fun kv -> snapshot kv = s0) kvs

let test_safety_two_clients_with_loss () =
  (* Two clients race on the same slots over a lossy network; all replicas
     must converge to identical states (SMR safety). *)
  let sys, kvs = make_system ~seed:21L ~n_clients:2 ~drop_p:0.08 ~checkpoint_period:8 () in
  let pending = ref 0 in
  for i = 0 to 39 do
    incr pending;
    Runtime.invoke sys ~client:(i mod 2)
      ~operation:(Printf.sprintf "set:%d:c%dv%d" (i mod 8) (i mod 2) i)
      (fun _ -> decr pending)
  done;
  let events = ref 0 in
  while !pending > 0 && !events < 3_000_000 do
    if not (Engine.step (Runtime.engine sys)) then failwith "quiescent";
    incr events
  done;
  Alcotest.(check int) "all ops completed" 0 !pending;
  settle sys 1.0;
  Alcotest.(check bool) "replicas converged" true (all_states_equal kvs)

let test_sequential_consistency_of_results () =
  (* A client alternating writes and reads observes its own writes. *)
  let sys, _ = make_system ~seed:22L () in
  for i = 0 to 19 do
    ignore (set sys ~client:0 2 (Printf.sprintf "gen%d" i));
    Alcotest.(check string) "read own write" (Printf.sprintf "gen%d" i)
      (value_part (get sys ~client:0 2))
  done

let test_equivocating_primary_safe () =
  (* An equivocating primary cannot make correct replicas diverge. *)
  let sys, kvs = make_system ~seed:23L () in
  Runtime.set_behavior sys 0 Replica.Equivocate;
  for i = 0 to 9 do
    ignore (set sys ~client:0 (i mod 8) (Printf.sprintf "eq%d" i))
  done;
  settle sys 2.0;
  Alcotest.(check bool) "replicas converged despite equivocation" true
    (let honest = [ kvs.(1); kvs.(2); kvs.(3) ] in
     List.for_all (fun (kv : kv) -> kv.slots = kvs.(1).slots) honest)

let test_partition_blocks_then_heals () =
  let sys, _ = make_system ~seed:24L () in
  ignore (set sys ~client:0 0 "before");
  (* 2+2 split: no 2f+1 quorum exists, so no operation can commit. *)
  Engine.partition (Runtime.engine sys) [ 0; 1 ] [ 2; 3 ];
  let done_ = ref false in
  Runtime.invoke sys ~client:0 ~operation:"set:0:during" (fun _ -> done_ := true);
  settle sys 3.0;
  Alcotest.(check bool) "no progress across partition" false !done_;
  Engine.heal (Runtime.engine sys);
  let events = ref 0 in
  while (not !done_) && !events < 3_000_000 do
    if not (Engine.step (Runtime.engine sys)) then failwith "quiescent";
    incr events
  done;
  Alcotest.(check bool) "heals and completes" true !done_;
  Alcotest.(check string) "value committed once" "during" (value_part (get sys ~client:0 0))

let test_successive_primary_failures () =
  (* Mute the current primary after each batch; the view advances past the
     dead primaries and the service keeps going (f = 1 at a time is
     respected because earlier primaries are revived). *)
  let sys, _ = make_system ~seed:25L () in
  ignore (set sys ~client:0 0 "v0");
  Runtime.set_behavior sys 0 Replica.Mute;
  ignore (set sys ~client:0 0 "v1");
  (* Revive 0, kill the new primary. *)
  Runtime.set_behavior sys 0 Replica.Honest;
  let new_primary =
    let node = Runtime.replica sys 1 in
    Replica.view node.Runtime.replica mod 4
  in
  Runtime.set_behavior sys new_primary Replica.Mute;
  ignore (set sys ~client:0 0 "v2");
  Alcotest.(check string) "final value" "v2" (value_part (get sys ~client:0 0))

let test_mac_forgery_rejected () =
  (* A message whose authenticator was built by the wrong principal is
     dropped and counted, never processed. *)
  let sys, _ = make_system ~seed:26L () in
  ignore (set sys ~client:0 0 "x");
  let node = Runtime.replica sys 1 in
  let before = (Replica.stats node.Runtime.replica).Replica.rejected_macs in
  (* Replay a legitimate-looking prepare "from replica 2" but sealed by the
     orchestrator-node id (whose keys differ): MAC check must fail. *)
  let config = Runtime.config sys in
  let chains = Base_crypto.Auth.create ~seed:4242L ~n_principals:config.Types.n_principals in
  let forged =
    Message.seal chains.(2) ~sender:2 ~n_receivers:config.Types.n
      (Message.Prepare
         { view = 0; seq = 3; digest = Base_crypto.Digest_t.of_string "fake"; replica = 2 })
  in
  Engine.send (Runtime.engine sys) ~src:2 ~dst:1 (Runtime.Bft forged);
  settle sys 0.2;
  let after = (Replica.stats node.Runtime.replica).Replica.rejected_macs in
  Alcotest.(check bool) "forged MAC rejected" true (after = before + 1)

let test_checkpoint_digests_match () =
  (* All replicas produce identical checkpoint digests at the same seqno —
     the heart of abstract-state agreement. *)
  let sys, _ = make_system ~seed:27L ~checkpoint_period:8 () in
  for i = 0 to 24 do
    ignore (set sys ~client:0 (i mod 8) (Printf.sprintf "cp%d" i))
  done;
  settle sys 1.0;
  Array.iter
    (fun node ->
      Alcotest.(check bool) "stable checkpoint advanced" true
        (Replica.low_watermark node.Runtime.replica >= 8))
    (Runtime.replicas sys)

let test_null_requests_after_view_change () =
  (* A view change with gaps orders null requests; execution skips them and
     the service state is unaffected. *)
  let sys, kvs = make_system ~seed:28L () in
  ignore (set sys ~client:0 1 "solid");
  Runtime.set_behavior sys 0 Replica.Mute;
  ignore (set sys ~client:0 2 "after-vc");
  settle sys 1.0;
  Alcotest.(check string) "pre-vc value survives" "solid" kvs.(1).slots.(1);
  Alcotest.(check string) "post-vc value applied" "after-vc" kvs.(1).slots.(2)

let test_read_only_with_replica_down () =
  (* The read-only optimisation still reaches its 2f+1 quorum with one
     replica down. *)
  let sys, _ = make_system ~seed:29L () in
  ignore (set sys ~client:0 4 "ro-target");
  Engine.set_node_up (Runtime.engine sys) 3 false;
  Alcotest.(check string) "read-only succeeds" "ro-target"
    (value_part (get_ro sys ~client:0 4))

let suite =
  [
    Alcotest.test_case "safety: two clients + loss" `Quick test_safety_two_clients_with_loss;
    Alcotest.test_case "sequential consistency" `Quick test_sequential_consistency_of_results;
    Alcotest.test_case "equivocating primary is safe" `Quick test_equivocating_primary_safe;
    Alcotest.test_case "partition blocks, heal resumes" `Quick test_partition_blocks_then_heals;
    Alcotest.test_case "successive primary failures" `Quick test_successive_primary_failures;
    Alcotest.test_case "MAC forgery rejected" `Quick test_mac_forgery_rejected;
    Alcotest.test_case "checkpoints advance everywhere" `Quick test_checkpoint_digests_match;
    Alcotest.test_case "null requests after view change" `Quick
      test_null_requests_after_view_change;
    Alcotest.test_case "read-only with replica down" `Quick test_read_only_with_replica_down;
  ]
